file(REMOVE_RECURSE
  "CMakeFiles/baseline_system_test.dir/integration/baseline_system_test.cc.o"
  "CMakeFiles/baseline_system_test.dir/integration/baseline_system_test.cc.o.d"
  "baseline_system_test"
  "baseline_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
