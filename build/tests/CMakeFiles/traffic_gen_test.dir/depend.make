# Empty dependencies file for traffic_gen_test.
# This may be replaced when dependencies are built.
