file(REMOVE_RECURSE
  "CMakeFiles/traffic_gen_test.dir/dev/traffic_gen_test.cc.o"
  "CMakeFiles/traffic_gen_test.dir/dev/traffic_gen_test.cc.o.d"
  "traffic_gen_test"
  "traffic_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
