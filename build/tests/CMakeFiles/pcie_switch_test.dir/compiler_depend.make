# Empty compiler generated dependencies file for pcie_switch_test.
# This may be replaced when dependencies are built.
