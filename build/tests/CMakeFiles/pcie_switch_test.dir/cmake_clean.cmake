file(REMOVE_RECURSE
  "CMakeFiles/pcie_switch_test.dir/pcie/pcie_switch_test.cc.o"
  "CMakeFiles/pcie_switch_test.dir/pcie/pcie_switch_test.cc.o.d"
  "pcie_switch_test"
  "pcie_switch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcie_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
