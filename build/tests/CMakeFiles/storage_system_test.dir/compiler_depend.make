# Empty compiler generated dependencies file for storage_system_test.
# This may be replaced when dependencies are built.
