file(REMOVE_RECURSE
  "CMakeFiles/simple_memory_test.dir/mem/simple_memory_test.cc.o"
  "CMakeFiles/simple_memory_test.dir/mem/simple_memory_test.cc.o.d"
  "simple_memory_test"
  "simple_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
