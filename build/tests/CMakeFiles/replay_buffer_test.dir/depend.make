# Empty dependencies file for replay_buffer_test.
# This may be replaced when dependencies are built.
