file(REMOVE_RECURSE
  "CMakeFiles/link_property_test.dir/pcie/link_property_test.cc.o"
  "CMakeFiles/link_property_test.dir/pcie/link_property_test.cc.o.d"
  "link_property_test"
  "link_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
