file(REMOVE_RECURSE
  "CMakeFiles/bridge_header_test.dir/pci/bridge_header_test.cc.o"
  "CMakeFiles/bridge_header_test.dir/pci/bridge_header_test.cc.o.d"
  "bridge_header_test"
  "bridge_header_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridge_header_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
