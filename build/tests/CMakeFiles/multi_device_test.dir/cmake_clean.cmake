file(REMOVE_RECURSE
  "CMakeFiles/multi_device_test.dir/integration/multi_device_test.cc.o"
  "CMakeFiles/multi_device_test.dir/integration/multi_device_test.cc.o.d"
  "multi_device_test"
  "multi_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
