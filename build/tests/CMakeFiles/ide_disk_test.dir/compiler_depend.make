# Empty compiler generated dependencies file for ide_disk_test.
# This may be replaced when dependencies are built.
