# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ide_disk_test.
