file(REMOVE_RECURSE
  "CMakeFiles/ide_disk_test.dir/dev/ide_disk_test.cc.o"
  "CMakeFiles/ide_disk_test.dir/dev/ide_disk_test.cc.o.d"
  "ide_disk_test"
  "ide_disk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ide_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
