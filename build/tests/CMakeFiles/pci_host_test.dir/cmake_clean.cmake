file(REMOVE_RECURSE
  "CMakeFiles/pci_host_test.dir/pci/pci_host_test.cc.o"
  "CMakeFiles/pci_host_test.dir/pci/pci_host_test.cc.o.d"
  "pci_host_test"
  "pci_host_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pci_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
