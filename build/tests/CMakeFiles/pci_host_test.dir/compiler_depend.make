# Empty compiler generated dependencies file for pci_host_test.
# This may be replaced when dependencies are built.
