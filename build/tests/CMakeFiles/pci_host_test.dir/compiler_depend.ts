# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pci_host_test.
