file(REMOVE_RECURSE
  "CMakeFiles/nic_8254x_test.dir/dev/nic_8254x_test.cc.o"
  "CMakeFiles/nic_8254x_test.dir/dev/nic_8254x_test.cc.o.d"
  "nic_8254x_test"
  "nic_8254x_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_8254x_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
