# Empty dependencies file for nic_8254x_test.
# This may be replaced when dependencies are built.
