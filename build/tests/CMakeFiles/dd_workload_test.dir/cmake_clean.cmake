file(REMOVE_RECURSE
  "CMakeFiles/dd_workload_test.dir/os/dd_workload_test.cc.o"
  "CMakeFiles/dd_workload_test.dir/os/dd_workload_test.cc.o.d"
  "dd_workload_test"
  "dd_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
