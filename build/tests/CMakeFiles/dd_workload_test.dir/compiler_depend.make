# Empty compiler generated dependencies file for dd_workload_test.
# This may be replaced when dependencies are built.
