file(REMOVE_RECURSE
  "CMakeFiles/pcie_timing_test.dir/pcie/pcie_timing_test.cc.o"
  "CMakeFiles/pcie_timing_test.dir/pcie/pcie_timing_test.cc.o.d"
  "pcie_timing_test"
  "pcie_timing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcie_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
