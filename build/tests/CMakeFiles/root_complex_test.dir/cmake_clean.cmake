file(REMOVE_RECURSE
  "CMakeFiles/root_complex_test.dir/pcie/root_complex_test.cc.o"
  "CMakeFiles/root_complex_test.dir/pcie/root_complex_test.cc.o.d"
  "root_complex_test"
  "root_complex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/root_complex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
