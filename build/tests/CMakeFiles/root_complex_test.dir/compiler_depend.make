# Empty compiler generated dependencies file for root_complex_test.
# This may be replaced when dependencies are built.
