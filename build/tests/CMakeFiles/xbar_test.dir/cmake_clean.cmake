file(REMOVE_RECURSE
  "CMakeFiles/xbar_test.dir/mem/xbar_test.cc.o"
  "CMakeFiles/xbar_test.dir/mem/xbar_test.cc.o.d"
  "xbar_test"
  "xbar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
