file(REMOVE_RECURSE
  "CMakeFiles/config_space_test.dir/pci/config_space_test.cc.o"
  "CMakeFiles/config_space_test.dir/pci/config_space_test.cc.o.d"
  "config_space_test"
  "config_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
