# Empty dependencies file for msi_test.
# This may be replaced when dependencies are built.
