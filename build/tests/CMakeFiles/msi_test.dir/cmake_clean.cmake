file(REMOVE_RECURSE
  "CMakeFiles/msi_test.dir/integration/msi_test.cc.o"
  "CMakeFiles/msi_test.dir/integration/msi_test.cc.o.d"
  "msi_test"
  "msi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
