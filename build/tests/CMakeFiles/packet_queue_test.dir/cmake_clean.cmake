file(REMOVE_RECURSE
  "CMakeFiles/packet_queue_test.dir/mem/packet_queue_test.cc.o"
  "CMakeFiles/packet_queue_test.dir/mem/packet_queue_test.cc.o.d"
  "packet_queue_test"
  "packet_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
