# Empty dependencies file for packet_queue_test.
# This may be replaced when dependencies are built.
