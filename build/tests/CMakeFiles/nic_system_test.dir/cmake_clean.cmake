file(REMOVE_RECURSE
  "CMakeFiles/nic_system_test.dir/integration/nic_system_test.cc.o"
  "CMakeFiles/nic_system_test.dir/integration/nic_system_test.cc.o.d"
  "nic_system_test"
  "nic_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
