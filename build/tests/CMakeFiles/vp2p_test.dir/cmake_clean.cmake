file(REMOVE_RECURSE
  "CMakeFiles/vp2p_test.dir/pcie/vp2p_test.cc.o"
  "CMakeFiles/vp2p_test.dir/pcie/vp2p_test.cc.o.d"
  "vp2p_test"
  "vp2p_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp2p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
