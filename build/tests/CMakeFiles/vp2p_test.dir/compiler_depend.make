# Empty compiler generated dependencies file for vp2p_test.
# This may be replaced when dependencies are built.
