file(REMOVE_RECURSE
  "CMakeFiles/packet_pool_test.dir/mem/packet_pool_test.cc.o"
  "CMakeFiles/packet_pool_test.dir/mem/packet_pool_test.cc.o.d"
  "packet_pool_test"
  "packet_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
