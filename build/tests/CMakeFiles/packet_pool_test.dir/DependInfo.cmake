
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/packet_pool_test.cc" "tests/CMakeFiles/packet_pool_test.dir/mem/packet_pool_test.cc.o" "gcc" "tests/CMakeFiles/packet_pool_test.dir/mem/packet_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/pciesim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/pciesim_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/pciesim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/pciesim_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/pci/CMakeFiles/pciesim_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pciesim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pciesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
