# Empty dependencies file for int_controller_test.
# This may be replaced when dependencies are built.
