file(REMOVE_RECURSE
  "CMakeFiles/int_controller_test.dir/dev/int_controller_test.cc.o"
  "CMakeFiles/int_controller_test.dir/dev/int_controller_test.cc.o.d"
  "int_controller_test"
  "int_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/int_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
