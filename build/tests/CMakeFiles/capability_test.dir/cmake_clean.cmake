file(REMOVE_RECURSE
  "CMakeFiles/capability_test.dir/pci/capability_test.cc.o"
  "CMakeFiles/capability_test.dir/pci/capability_test.cc.o.d"
  "capability_test"
  "capability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
