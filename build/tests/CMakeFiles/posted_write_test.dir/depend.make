# Empty dependencies file for posted_write_test.
# This may be replaced when dependencies are built.
