file(REMOVE_RECURSE
  "CMakeFiles/posted_write_test.dir/integration/posted_write_test.cc.o"
  "CMakeFiles/posted_write_test.dir/integration/posted_write_test.cc.o.d"
  "posted_write_test"
  "posted_write_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posted_write_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
