# Empty compiler generated dependencies file for addr_range_test.
# This may be replaced when dependencies are built.
