file(REMOVE_RECURSE
  "CMakeFiles/addr_range_test.dir/mem/addr_range_test.cc.o"
  "CMakeFiles/addr_range_test.dir/mem/addr_range_test.cc.o.d"
  "addr_range_test"
  "addr_range_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/addr_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
