file(REMOVE_RECURSE
  "CMakeFiles/event_queue_churn_test.dir/sim/event_queue_churn_test.cc.o"
  "CMakeFiles/event_queue_churn_test.dir/sim/event_queue_churn_test.cc.o.d"
  "event_queue_churn_test"
  "event_queue_churn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_queue_churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
