#!/usr/bin/env bash
#
# The full correctness gauntlet, in cheapest-first order:
#
#   1. gem5_lint.py over src/ bench/ tests/   (style, seconds)
#   2. run-tidy                               (clang-tidy, if present)
#   3. default preset: build + tier-1 ctest
#      (includes golden_stats_test: stats dumps vs tests/golden/)
#   4. determinism gates: in-process seeded-rerun test plus the
#      bench-level byte-identical-JSON ctests
#   5. asan-ubsan preset: build + tier-1 ctest (pool poisoning live)
#
# Any finding or failure exits nonzero. The audit preset is covered
# by `ctest --preset audit` and is not part of this quick gate; run
# scripts/check.sh --with-audit to include it.

set -euo pipefail

cd "$(dirname "$0")/.."

with_audit=0
for arg in "$@"; do
    case "$arg" in
      --with-audit) with_audit=1 ;;
      *) echo "usage: scripts/check.sh [--with-audit]" >&2; exit 2 ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 4)

echo "== [1/5] gem5_lint =="
python3 tools/gem5_lint.py src bench tests

echo "== [2/5] clang-tidy (run-tidy) =="
cmake --preset default >/dev/null
cmake --build build --target run-tidy -j "$jobs"

echo "== [3/5] default build + tier-1 ctest (incl. golden stats) =="
cmake --build build -j "$jobs"
ctest --test-dir build -LE tier2 -j "$jobs" --output-on-failure

echo "== [4/5] determinism gates =="
ctest --test-dir build -R 'determinism' -j "$jobs" \
    --output-on-failure

echo "== [5/5] asan-ubsan build + tier-1 ctest =="
cmake --preset asan-ubsan >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan -LE tier2 -j "$jobs" --output-on-failure

if [ "$with_audit" = 1 ]; then
    echo "== [extra] audit build + tier-1 ctest =="
    cmake --preset audit >/dev/null
    cmake --build build-audit -j "$jobs"
    ctest --test-dir build-audit -LE tier2 -j "$jobs" \
        --output-on-failure
fi

echo "check.sh: all gates passed"
