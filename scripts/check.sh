#!/usr/bin/env bash
#
# The full correctness gauntlet, in cheapest-first order:
#
#   1. gem5_lint.py over src/ bench/ tests/   (style, seconds)
#   2. pciesim_analyze.py over src/ + fixture corpus (semantics:
#      layering, determinism, domain safety; seconds)
#   3. run-tidy                               (clang-tidy, if present)
#   4. default preset: build + tier-1 ctest
#      (includes golden_stats_test: stats dumps vs tests/golden/)
#   5. determinism gates: in-process seeded-rerun test plus the
#      bench-level byte-identical-JSON ctests (stats.json included)
#   6. pciesim-report self-smoke: a diff of identical stats.json
#      dumps must exit 0
#   7. asan-ubsan preset: build + tier-1 ctest (pool poisoning live)
#   8. tsan preset: bench_kernel --threads 4 --smoke under
#      ThreadSanitizer (the parallel engine's data-race gate)
#   9. profiler overhead gate: the default build (profiler compiled
#      in, disabled; parallel flight recorder live) within 5% of
#      the notrace build (hook and recorder removed) — bench_fig9a
#      for the event core, bench_kernel for the telemetry-on
#      mdev thread sweep
#
# Any finding or failure exits nonzero. The audit preset is covered
# by `ctest --preset audit` and is not part of this quick gate; run
# scripts/check.sh --with-audit to include it.

set -euo pipefail

cd "$(dirname "$0")/.."

with_audit=0
for arg in "$@"; do
    case "$arg" in
      --with-audit) with_audit=1 ;;
      *) echo "usage: scripts/check.sh [--with-audit]" >&2; exit 2 ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 4)

echo "== [1/9] gem5_lint =="
python3 tools/gem5_lint.py src bench tests

echo "== [2/9] pciesim_analyze (semantic checks + fixtures) =="
python3 tools/pciesim_analyze.py --tree src
python3 tools/analyze_fixtures_test.py

echo "== [3/9] clang-tidy (run-tidy) =="
cmake --preset default >/dev/null
cmake --build build --target run-tidy -j "$jobs"

echo "== [4/9] default build + tier-1 ctest (incl. golden stats) =="
cmake --build build -j "$jobs"
ctest --test-dir build -LE tier2 -j "$jobs" --output-on-failure

echo "== [5/9] determinism gates =="
ctest --test-dir build -R 'determinism' -j "$jobs" \
    --output-on-failure
# Resilience gate: the error-containment smoke (degradation ladder
# + surprise unplug) must run clean and emit valid JSON.
ctest --test-dir build -R 'bench_smoke_bench_resilience' \
    -j "$jobs" --output-on-failure
# Fabric gate: the declarative builder must construct and drive a
# 1024-endpoint topology (beyond the 255-bus enumeration ceiling)
# with valid JSON output (ISSUE 9 acceptance).
ctest --test-dir build -R 'fabric_smoke' \
    -j "$jobs" --output-on-failure

echo "== [6/9] pciesim-report diff self-smoke =="
./build/bench/bench_fig9a --smoke --json --no-timing \
    --stats-json=build/check_stats.json >/dev/null
./build/tools/pciesim-report diff build/check_stats.json \
    build/check_stats.json

echo "== [7/9] asan-ubsan build + tier-1 ctest =="
cmake --preset asan-ubsan >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan -LE tier2 -j "$jobs" --output-on-failure

echo "== [8/9] tsan bench_kernel --threads 4 --smoke =="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j "$jobs" --target bench_kernel
./build-tsan/bench/bench_kernel --smoke --json >/dev/null

echo "== [9/9] profiler overhead gate (vs notrace) =="
cmake --preset notrace >/dev/null
cmake --build build-notrace -j "$jobs" --target bench_fig9a \
    bench_kernel
scripts/profiler_overhead_gate.sh

if [ "$with_audit" = 1 ]; then
    echo "== [extra] audit build + tier-1 ctest =="
    cmake --preset audit >/dev/null
    cmake --build build-audit -j "$jobs"
    ctest --test-dir build-audit -LE tier2 -j "$jobs" \
        --output-on-failure
fi

echo "check.sh: all gates passed"
