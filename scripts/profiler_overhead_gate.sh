#!/usr/bin/env bash
#
# Profiler-overhead gate: the default build carries the profiler
# hook compiled in but disabled (one predictable branch per event).
# That must cost no more than 5% of bench wall time against the
# notrace build, where PCIESIM_PROFILING=0 removes the hook
# entirely. Runs are interleaved and compared by median so a single
# scheduler hiccup cannot fail the gate.
#
# Expects ./build and ./build-notrace to be built already (check.sh
# arranges this). Usage: scripts/profiler_overhead_gate.sh [runs]

set -euo pipefail

cd "$(dirname "$0")/.."

runs=${1:-5}
with_hook=./build/bench/bench_fig9a
without_hook=./build-notrace/bench/bench_fig9a
for bin in "$with_hook" "$without_hook"; do
    if [ ! -x "$bin" ]; then
        echo "profiler_overhead_gate: missing $bin (build first)" >&2
        exit 2
    fi
done

# One run's cost: the sum of wall_ms across the bench's records.
measure() {
    "$1" --json | python3 -c '
import json, sys
print(sum(json.loads(l)["wall_ms"] for l in sys.stdin if l.strip()))'
}

a=()
b=()
for _ in $(seq "$runs"); do
    a+=("$(measure "$with_hook")")
    b+=("$(measure "$without_hook")")
done

python3 - "${a[@]}" -- "${b[@]}" <<'EOF'
import statistics
import sys

argv = sys.argv[1:]
split = argv.index("--")
hook = statistics.median(map(float, argv[:split]))
nohook = statistics.median(map(float, argv[split + 1:]))
overhead = (hook - nohook) / nohook * 100.0
print(f"profiler_overhead_gate: disabled-profiler median "
      f"{hook:.1f} ms vs notrace {nohook:.1f} ms "
      f"({overhead:+.2f}% overhead, limit +5%)")
sys.exit(0 if overhead <= 5.0 else 1)
EOF
