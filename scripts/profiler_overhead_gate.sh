#!/usr/bin/env bash
#
# Profiler-overhead gate: the default build carries the profiler
# hook compiled in but disabled (one predictable branch per event)
# plus the parallel-execution flight recorder (DESIGN.md §14). That
# must cost no more than 5% of bench wall time against the notrace
# build, where PCIESIM_PROFILING=0 removes the hook and the
# recorder entirely. Two gates:
#
#   bench_fig9a   the single-queue event core (profiler hook only);
#                 all records counted
#   bench_kernel  only the mdev/tN records are counted — the
#                 --threads sweep where the engine telemetry block
#                 (window classification, mailbox counters, barrier
#                 accounting) is live on the measured path (ISSUE 10
#                 acceptance). The non-engine records (churn,
#                 linkpair, dd) never execute the recorder, so their
#                 default-vs-notrace deltas are pure code-layout
#                 noise; measured swings of +-10-25% in both
#                 directions across otherwise-identical builds would
#                 drown a 5% budget.
#
# Runs are interleaved and compared by median so a single scheduler
# hiccup cannot fail the gate.
#
# Expects ./build and ./build-notrace to be built already (check.sh
# arranges this). Usage: scripts/profiler_overhead_gate.sh [runs]

set -euo pipefail

cd "$(dirname "$0")/.."

runs=${1:-5}

# One run's cost: the sum of wall_ms across the bench's records,
# optionally restricted to configs matching a prefix ($2).
measure() {
    "$1" --json | python3 -c '
import json, sys
prefix = sys.argv[1]
recs = [json.loads(l) for l in sys.stdin if l.strip()]
print(sum(r["wall_ms"] for r in recs
          if r["config"].startswith(prefix)))' "${2:-}"
}

# gate <label> <with-hook-bin> <without-hook-bin> [config-prefix]:
# medians of $runs interleaved runs must differ by <= 5%.
gate() {
    local label=$1 with_hook=$2 without_hook=$3 prefix=${4:-}
    local bin
    for bin in "$with_hook" "$without_hook"; do
        if [ ! -x "$bin" ]; then
            echo "profiler_overhead_gate: missing $bin" \
                "(build first)" >&2
            exit 2
        fi
    done

    local a=() b=()
    for _ in $(seq "$runs"); do
        a+=("$(measure "$with_hook" "$prefix")")
        b+=("$(measure "$without_hook" "$prefix")")
    done

    python3 - "$label" "${a[@]}" -- "${b[@]}" <<'EOF'
import statistics
import sys

label = sys.argv[1]
argv = sys.argv[2:]
split = argv.index("--")
hook = statistics.median(map(float, argv[:split]))
nohook = statistics.median(map(float, argv[split + 1:]))
overhead = (hook - nohook) / nohook * 100.0
print(f"profiler_overhead_gate[{label}]: disabled-profiler median "
      f"{hook:.1f} ms vs notrace {nohook:.1f} ms "
      f"({overhead:+.2f}% overhead, limit +5%)")
sys.exit(0 if overhead <= 5.0 else 1)
EOF
}

gate fig9a ./build/bench/bench_fig9a ./build-notrace/bench/bench_fig9a
gate kernel ./build/bench/bench_kernel \
    ./build-notrace/bench/bench_kernel mdev
