#!/usr/bin/env bash
#
# Re-bless the golden-stats files in tests/golden/ after an
# intentional behaviour change. Builds the default preset, runs
# golden_stats_test in regeneration mode (each scenario overwrites
# its golden file instead of diffing), then re-runs it normally to
# prove the fresh files round-trip.
#
# Review the resulting diff like any other code change: every line
# that moved is a behaviour change you are signing off on.

set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

cmake --preset default >/dev/null
cmake --build build -j "$jobs" --target golden_stats_test

echo "== regenerating tests/golden/ =="
PCIESIM_REGEN_GOLDEN=1 ./build/tests/golden_stats_test

echo "== verifying the fresh goldens round-trip =="
./build/tests/golden_stats_test

echo
echo "Done. Review with: git diff tests/golden/"
