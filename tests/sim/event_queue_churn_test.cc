/**
 * @file
 * Churn and determinism tests for the indexed event queue: the
 * schedule/deschedule/reschedule storms the link layer's ACK and
 * replay timers generate, including mutations from inside firing
 * callbacks. These lock in the exact firing order so an event-queue
 * implementation swap is observable as a test diff.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace pciesim;

TEST(EventQueueChurnTest, SameTickFifoOrderAcross10kEvents)
{
    EventQueue q;
    constexpr int n = 10000;
    std::vector<int> fired;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    fired.reserve(n);
    events.reserve(n);
    for (int i = 0; i < n; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&fired, i] { fired.push_back(i); }, "e"));
        // Everything lands on tick 100, in three interleaved wavefronts.
        q.schedule(events[i].get(), 100);
    }
    q.run();
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(fired[i], i) << "FIFO order broken at " << i;
}

TEST(EventQueueChurnTest, RescheduleMovesToBackOfSameTick)
{
    // A rescheduled event goes behind events already scheduled for
    // that tick (it consumes a fresh order number), exactly like the
    // historical deschedule+schedule path.
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");

    q.schedule(&a, 50); // would fire first if left alone
    q.schedule(&b, 100);
    q.schedule(&c, 100);
    q.reschedule(&a, 100); // now fires after b and c

    q.run();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(EventQueueChurnTest, RescheduleStormKeepsSizeConsistent)
{
    EventQueue q;
    constexpr int n = 256;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < n; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [] {}, "t"));
        q.schedule(events[i].get(), 1000 + i);
    }
    EXPECT_EQ(q.size(), static_cast<std::size_t>(n));

    // 10k reschedules across the set: size (== heap occupancy) must
    // never drift, unlike a lazy scheme that accretes stale entries.
    for (int round = 0; round < 40; ++round) {
        for (int i = 0; i < n; ++i) {
            q.reschedule(events[i].get(),
                         1000 + ((i * 37 + round * 11) % 4096));
            ASSERT_EQ(q.size(), static_cast<std::size_t>(n));
        }
    }

    for (auto &e : events)
        q.deschedule(e.get());
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueChurnTest, DescheduleFromInsideCallback)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper victim([&] { order.push_back(99); },
                                "victim");
    EventFunctionWrapper killer(
        [&] {
            order.push_back(1);
            if (victim.scheduled())
                q.deschedule(&victim);
        },
        "killer");

    q.schedule(&killer, 10);
    q.schedule(&victim, 10); // same tick, after killer: must not fire
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueChurnTest, RescheduleCurrentlyFiringEvent)
{
    // An event rescheduling itself while firing is the periodic-
    // timer idiom; it is unscheduled during process(), so this is a
    // plain schedule under the hood.
    EventQueue q;
    int fires = 0;
    EventFunctionWrapper timer(
        [&] {
            if (++fires < 8)
                q.reschedule(&timer, q.curTick() + 10);
        },
        "timer");
    q.schedule(&timer, 10);
    q.run();
    EXPECT_EQ(fires, 8);
    EXPECT_EQ(q.curTick(), 80u);
}

TEST(EventQueueChurnTest, RescheduleOtherEventFromInsideCallback)
{
    // The ACK-coalescing pattern: a firing event pushes another
    // pending timer's deadline out.
    EventQueue q;
    std::vector<std::pair<int, Tick>> log;
    EventFunctionWrapper timer([&] { log.push_back({2, q.curTick()}); },
                               "timer");
    EventFunctionWrapper pusher(
        [&] {
            log.push_back({1, q.curTick()});
            q.reschedule(&timer, q.curTick() + 100);
        },
        "pusher");

    q.schedule(&timer, 50);
    q.schedule(&pusher, 20);
    q.run();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], (std::pair<int, Tick>{1, 20}));
    EXPECT_EQ(log[1], (std::pair<int, Tick>{2, 120}));
}

TEST(EventQueueChurnTest, AckReplayTimerStormIsDeterministic)
{
    // Run the link-layer-like churn twice and require identical
    // firing traces: schedule order, not heap internals, must
    // decide same-tick ties.
    auto trace = [] {
        EventQueue q;
        std::vector<std::pair<int, Tick>> fired;
        std::vector<std::unique_ptr<EventFunctionWrapper>> timers;
        constexpr int n = 64;
        for (int i = 0; i < n; ++i) {
            timers.push_back(std::make_unique<EventFunctionWrapper>(
                [&q, &timers, &fired, i] {
                    fired.push_back({i, q.curTick()});
                    auto *neighbour = timers[(i + 1) % n].get();
                    if (neighbour->scheduled())
                        q.reschedule(neighbour, q.curTick() + 64);
                    auto *victim = timers[(i + 5) % n].get();
                    if (i % 3 == 0 && victim->scheduled()) {
                        q.deschedule(victim);
                        q.schedule(victim, q.curTick() + 32);
                    }
                    if (fired.size() < 5000)
                        q.schedule(timers[i].get(),
                                   q.curTick() + 64);
                },
                "t"));
        }
        for (int i = 0; i < n; ++i)
            q.schedule(timers[i].get(), 64 + (i % 8));
        q.run();
        return fired;
    };

    auto first = trace();
    auto second = trace();
    ASSERT_GT(first.size(), 4000u);
    EXPECT_EQ(first, second);
}

TEST(EventQueueChurnTest, NextTickTracksChurn)
{
    EventQueue q;
    EventFunctionWrapper a([] {}, "a");
    EventFunctionWrapper b([] {}, "b");
    q.schedule(&a, 100);
    q.schedule(&b, 200);
    EXPECT_EQ(q.nextTick(), 100u);
    q.reschedule(&a, 300);
    EXPECT_EQ(q.nextTick(), 200u);
    q.deschedule(&b);
    EXPECT_EQ(q.nextTick(), 300u);
    q.deschedule(&a);
    EXPECT_EQ(q.nextTick(), maxTick);
}
