/**
 * @file
 * Tests for the debug-gated invariant audit layer (sim/invariant.hh).
 *
 * The macro contract is testable in every build mode: audit
 * conditions must not be evaluated when audits are compiled out,
 * and audit-only code must vanish. The death tests — a pooled
 * double free, a foreign pointer handed to the pool, a corrupted
 * replay-buffer sequence number — only exist in audit builds
 * (the `audit` preset), where they prove each audit actually fires.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/packet.hh"
#include "pcie/pcie_link.hh"
#include "pcie/replay_buffer.hh"
#include "sim/event_queue.hh"
#include "sim/invariant.hh"
#include "sim/simulation.hh"

using namespace pciesim;

TEST(InvariantTest, AuditConditionEvaluationMatchesBuildMode)
{
    int evaluations = 0;
    PCIESIM_AUDIT(++evaluations > 0, "never fires");
    EXPECT_EQ(evaluations, auditEnabled ? 1 : 0);
}

TEST(InvariantTest, AuditOnlyCodeMatchesBuildMode)
{
    int ran = 0;
    PCIESIM_AUDIT_ONLY(ran = 1;)
    EXPECT_EQ(ran, auditEnabled ? 1 : 0);
}

TEST(InvariantTest, HealthyEventQueuePassesHeapAudit)
{
    EventQueue q;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 64; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [] {}, "invariant.test.event"));
    }
    for (int i = 0; i < 64; ++i)
        q.schedule(events[i].get(), (i * 37) % 29);
    q.auditHeap();

    // Deschedule a few from the middle, reschedule others, audit
    // after each mutation shape.
    q.deschedule(events[10].get());
    q.deschedule(events[20].get());
    q.reschedule(events[30].get(), 1000);
    q.auditHeap();

    q.run();
    q.auditHeap();
    EXPECT_TRUE(q.empty());
}

TEST(InvariantTest, HealthyReplayBufferPassesSeqAudit)
{
    ReplayBuffer rb(4);
    for (SeqNum s = 1; s <= 4; ++s) {
        rb.push(PciePkt::makeTlp(
            Packet::makeRequest(MemCmd::ReadReq, 0x1000 * s, 64), s));
    }
    EXPECT_EQ(rb.ack(2), 2u);
    rb.push(PciePkt::makeTlp(
        Packet::makeRequest(MemCmd::ReadReq, 0x9000, 64), 5));
    EXPECT_EQ(rb.ack(5), 3u);
    EXPECT_TRUE(rb.empty());
}

TEST(InvariantTest, HealthyPoolRoundTripPassesAudit)
{
    PacketPool pool(64);
    void *a = pool.allocate();
    void *b = pool.allocate();
    pool.deallocate(a);
    pool.deallocate(b);
    void *c = pool.allocate();
    pool.deallocate(c);
    pool.shrink();
    EXPECT_EQ(pool.freeBlocks(), 0u);
}

#ifdef PCIESIM_ENABLE_AUDIT

TEST(InvariantDeathTest, PoolDoubleFreeFiresAudit)
{
    PacketPool pool(64);
    void *p = pool.allocate();
    pool.deallocate(p);
    EXPECT_DEATH(pool.deallocate(p), "double free or foreign pointer");
}

TEST(InvariantDeathTest, PoolForeignPointerFiresAudit)
{
    PacketPool pool(64);
    alignas(void *) unsigned char not_from_pool[64];
    EXPECT_DEATH(pool.deallocate(not_from_pool),
                 "double free or foreign pointer");
}

TEST(InvariantDeathTest, PooledPacketDoubleDeleteFiresAudit)
{
    // Exercise the audit through the real Packet operator delete,
    // not just the bare pool interface.
    Packet *raw = nullptr;
    {
        PacketPtr pkt = Packet::makeRequest(MemCmd::ReadReq, 0x40, 64);
        raw = pkt.get();
    }
    // raw's storage is already back on the freelist; freeing the
    // stale pointer again must be caught.
    EXPECT_DEATH(Packet::operator delete(raw),
                 "double free or foreign pointer");
}

TEST(InvariantDeathTest, ReplayBufferSeqCorruptionFiresAudit)
{
    ReplayBuffer rb(4);
    rb.push(PciePkt::makeTlp(
        Packet::makeRequest(MemCmd::ReadReq, 0x1000, 64), 7));
    rb.push(PciePkt::makeTlp(
        Packet::makeRequest(MemCmd::ReadReq, 0x2000, 64), 8));
    EXPECT_DEATH(rb.corruptSeqForAuditTest(1, 7),
                 "replay buffer seq order broken");
}

TEST(InvariantDeathTest, NakOutsideLossWindowFiresAudit)
{
    // At most one NAK per loss window: nakPending_ without
    // NAK_SCHEDULED means a second NAK was queued for the same
    // window.
    Simulation sim;
    PcieLink link(sim, "link", PcieLinkParams{});
    EXPECT_DEATH(link.upstreamIf().corruptNakStateForAuditTest(),
                 "NAK queued outside a loss window");
}

TEST(InvariantDeathTest, ReplayNumOverflowFiresAudit)
{
    // REPLAY_NUM past the threshold means a retrain was missed.
    Simulation sim;
    PcieLink link(sim, "link", PcieLinkParams{});
    EXPECT_DEATH(link.upstreamIf().corruptReplayNumForAuditTest(),
                 "exceeds the retrain threshold");
}

#endif // PCIESIM_ENABLE_AUDIT
