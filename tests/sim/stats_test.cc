/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

using namespace pciesim;
using namespace pciesim::stats;

TEST(StatsCounter, IncrementsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatsScalar, AssignAndAccumulate)
{
    Scalar s;
    s = 2.5;
    s += 1.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsDistribution, TracksMeanMinMax)
{
    Distribution d;
    d.init(0, 100, 10);
    d.sample(10);
    d.sample(20);
    d.sample(60);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 30.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 60.0);
}

TEST(StatsDistribution, BucketsClampOutOfRange)
{
    Distribution d;
    d.init(0, 100, 10);
    d.sample(-5);
    d.sample(1000);
    d.sample(55);
    EXPECT_EQ(d.buckets().front(), 1u);
    EXPECT_EQ(d.buckets().back(), 1u);
    EXPECT_EQ(d.buckets()[5], 1u);
}

TEST(StatsDistribution, WeightedSamples)
{
    Distribution d;
    d.init(0, 10, 2);
    d.sample(1.0, 3);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 1.0);
}

TEST(StatsHistogram, TracksExactSmallValues)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    for (std::uint64_t v : {1, 2, 3, 4, 5, 6, 7})
        h.sample(v);
    EXPECT_EQ(h.samples(), 7u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 7u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    // Values below 2^subBucketBits land in exact buckets.
    EXPECT_EQ(h.quantile(0.0), 1u);
    EXPECT_EQ(h.quantile(0.5), 4u);
    EXPECT_EQ(h.quantile(1.0), 7u);
}

TEST(StatsHistogram, QuantilesApproximateLargeValues)
{
    Histogram h;
    for (std::uint64_t i = 0; i < 1000; ++i)
        h.sample(1000 + i);
    // Log-bucketed: p50 within one sub-bucket (12.5%) of exact.
    std::uint64_t p50 = h.quantile(0.50);
    EXPECT_GE(p50, 1300u);
    EXPECT_LE(p50, 1700u);
    // Quantiles never escape the observed range.
    EXPECT_GE(h.quantile(0.0), 1000u);
    EXPECT_LE(h.quantile(1.0), 1999u);
    EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
}

TEST(StatsHistogram, WeightedSamplesAndReset)
{
    Histogram h;
    h.sample(10, 5);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.min(), 0u);
}

TEST(StatsHistogram, HandlesHugeValues)
{
    Histogram h;
    h.sample(1ULL << 40);
    h.sample((1ULL << 40) + 1);
    h.sample(~0ULL);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.max(), ~0ULL);
    EXPECT_GE(h.quantile(0.0), 1ULL << 40);
}

TEST(StatsRegistry, HistogramDumpAndLookup)
{
    Registry r;
    Histogram h;
    for (std::uint64_t i = 1; i <= 100; ++i)
        h.sample(i);
    r.add("x.lat", &h, "latency (ticks)");
    EXPECT_EQ(r.histogram("x.lat"), &h);
    EXPECT_EQ(r.histogram("missing"), nullptr);
    std::ostringstream os;
    r.dump(os);
    EXPECT_NE(os.str().find("x.lat"), std::string::npos);
    EXPECT_NE(os.str().find("samples=100"), std::string::npos);
    EXPECT_NE(os.str().find("p50="), std::string::npos);
    EXPECT_NE(os.str().find("p99="), std::string::npos);
    r.resetAll();
    EXPECT_EQ(h.samples(), 0u);
}

TEST(StatsRegistry, LooksUpByName)
{
    Registry r;
    Counter c;
    Scalar s;
    c += 7;
    s = 3.5;
    r.add("a.counter", &c);
    r.add("a.scalar", &s);
    EXPECT_EQ(r.counterValue("a.counter"), 7u);
    EXPECT_DOUBLE_EQ(r.scalarValue("a.scalar"), 3.5);
    EXPECT_TRUE(r.has("a.counter"));
    EXPECT_FALSE(r.has("missing"));
    EXPECT_EQ(r.counterValue("missing"), 0u);
}

TEST(StatsRegistry, DumpContainsNamesValuesAndDescriptions)
{
    Registry r;
    Counter c;
    c += 42;
    r.add("x.count", &c, "things counted");
    std::ostringstream os;
    r.dump(os);
    EXPECT_NE(os.str().find("x.count"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
    EXPECT_NE(os.str().find("things counted"), std::string::npos);
}

TEST(StatsRegistry, ResetAllZeroesEverything)
{
    Registry r;
    Counter c;
    Scalar s;
    Distribution d;
    d.init(0, 10, 2);
    c += 3;
    s = 1.0;
    d.sample(5);
    r.add("c", &c);
    r.add("s", &s);
    r.add("d", &d);
    r.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(d.samples(), 0u);
}

TEST(StatsRegistry, DuplicateNamePanics)
{
    setLoggingThrows(true);
    Registry r;
    Counter a, b;
    r.add("dup", &a);
    EXPECT_THROW(r.add("dup", &b), PanicError);
    setLoggingThrows(false);
}

TEST(Logging, ConcatenatesHeterogeneousArguments)
{
    setLoggingThrows(true);
    try {
        panic("x=", 42, " y=", 2.5, " z=", "str");
        FAIL();
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: x=42 y=2.5 z=str");
    }
    setLoggingThrows(false);
}

TEST(Logging, FatalThrowsFatalError)
{
    setLoggingThrows(true);
    EXPECT_THROW(fatal("bad config"), FatalError);
    EXPECT_THROW(fatalIf(true, "bad"), FatalError);
    EXPECT_NO_THROW(fatalIf(false, "fine"));
    EXPECT_NO_THROW(panicIf(false, "fine"));
    setLoggingThrows(false);
}

TEST(Ticks, ConversionsAreConsistent)
{
    using namespace pciesim::literals;
    EXPECT_EQ(1_ns, 1000u);
    EXPECT_EQ(1_us, 1000u * 1000u);
    EXPECT_EQ(1_ms, 1000u * 1000u * 1000u);
    EXPECT_EQ(2_s, 2000ull * 1000ull * 1000ull * 1000ull);
    EXPECT_DOUBLE_EQ(ticksToSeconds(seconds(3)), 3.0);
    EXPECT_DOUBLE_EQ(ticksToNs(nanoseconds(7)), 7.0);
}
