/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/invariant.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

using namespace pciesim;
using namespace pciesim::stats;

TEST(StatsCounter, IncrementsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatsScalar, AssignAndAccumulate)
{
    Scalar s;
    s = 2.5;
    s += 1.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsDistribution, TracksMeanMinMax)
{
    Distribution d;
    d.init(0, 100, 10);
    d.sample(10);
    d.sample(20);
    d.sample(60);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 30.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 60.0);
}

TEST(StatsDistribution, BucketsClampOutOfRange)
{
    Distribution d;
    d.init(0, 100, 10);
    d.sample(-5);
    d.sample(1000);
    d.sample(55);
    EXPECT_EQ(d.buckets().front(), 1u);
    EXPECT_EQ(d.buckets().back(), 1u);
    EXPECT_EQ(d.buckets()[5], 1u);
}

TEST(StatsDistribution, WeightedSamples)
{
    Distribution d;
    d.init(0, 10, 2);
    d.sample(1.0, 3);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 1.0);
}

TEST(StatsHistogram, TracksExactSmallValues)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    for (std::uint64_t v : {1, 2, 3, 4, 5, 6, 7})
        h.sample(v);
    EXPECT_EQ(h.samples(), 7u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 7u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    // Values below 2^subBucketBits land in exact buckets.
    EXPECT_EQ(h.quantile(0.0), 1u);
    EXPECT_EQ(h.quantile(0.5), 4u);
    EXPECT_EQ(h.quantile(1.0), 7u);
}

TEST(StatsHistogram, QuantilesApproximateLargeValues)
{
    Histogram h;
    for (std::uint64_t i = 0; i < 1000; ++i)
        h.sample(1000 + i);
    // Log-bucketed: p50 within one sub-bucket (12.5%) of exact.
    std::uint64_t p50 = h.quantile(0.50);
    EXPECT_GE(p50, 1300u);
    EXPECT_LE(p50, 1700u);
    // Quantiles never escape the observed range.
    EXPECT_GE(h.quantile(0.0), 1000u);
    EXPECT_LE(h.quantile(1.0), 1999u);
    EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
}

TEST(StatsHistogram, WeightedSamplesAndReset)
{
    Histogram h;
    h.sample(10, 5);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.min(), 0u);
}

TEST(StatsHistogram, HandlesHugeValues)
{
    Histogram h;
    h.sample(1ULL << 40);
    h.sample((1ULL << 40) + 1);
    h.sample(~0ULL);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.max(), ~0ULL);
    EXPECT_GE(h.quantile(0.0), 1ULL << 40);
}

TEST(StatsRegistry, HistogramDumpAndLookup)
{
    Registry r;
    Histogram h;
    for (std::uint64_t i = 1; i <= 100; ++i)
        h.sample(i);
    r.add("x.lat", &h, "latency (ticks)");
    EXPECT_EQ(r.histogram("x.lat"), &h);
    EXPECT_EQ(r.histogram("missing"), nullptr);
    std::ostringstream os;
    r.dump(os);
    EXPECT_NE(os.str().find("x.lat"), std::string::npos);
    EXPECT_NE(os.str().find("samples=100"), std::string::npos);
    EXPECT_NE(os.str().find("p50="), std::string::npos);
    EXPECT_NE(os.str().find("p99="), std::string::npos);
    r.resetAll();
    EXPECT_EQ(h.samples(), 0u);
}

TEST(StatsRegistry, LooksUpByName)
{
    Registry r;
    Counter c;
    Scalar s;
    c += 7;
    s = 3.5;
    r.add("a.counter", &c);
    r.add("a.scalar", &s);
    EXPECT_EQ(r.counterValue("a.counter"), 7u);
    EXPECT_DOUBLE_EQ(r.scalarValue("a.scalar"), 3.5);
    EXPECT_TRUE(r.has("a.counter"));
    EXPECT_FALSE(r.has("missing"));
}

TEST(StatsRegistry, MissingLookupWarnsAndReturnsZero)
{
    if (auditEnabled)
        GTEST_SKIP() << "lookup misses panic under audit";
    Registry r;
    Counter c;
    r.add("present", &c);
    // The silent-zero trap is now a warn-once: the value is still 0
    // (so old readouts keep working) but the miss is loud.
    EXPECT_EQ(r.counterValue("missing"), 0u);
    EXPECT_EQ(r.counterValue("missing"), 0u);
    EXPECT_DOUBLE_EQ(r.scalarValue("missing"), 0.0);
    // Wrong-kind lookups miss too: "present" is not a scalar.
    EXPECT_DOUBLE_EQ(r.scalarValue("present"), 0.0);
}

TEST(StatsRegistryDeathTest, MissingLookupPanicsUnderAudit)
{
    if (!auditEnabled)
        GTEST_SKIP() << "audit disabled in this build";
    Registry r;
    EXPECT_DEATH((void)r.counterValue("missing"),
                 "audit failed: stat lookup miss");
}

TEST(StatsRegistry, TryLookupsReportPresence)
{
    Registry r;
    Counter c;
    Scalar s;
    c += 9;
    s = 1.25;
    r.add("c", &c);
    r.add("s", &s);
    ASSERT_TRUE(r.tryCounter("c").has_value());
    EXPECT_EQ(*r.tryCounter("c"), 9u);
    ASSERT_TRUE(r.tryScalar("s").has_value());
    EXPECT_DOUBLE_EQ(*r.tryScalar("s"), 1.25);
    // Absent names and wrong kinds are nullopt, never 0-with-warn.
    EXPECT_FALSE(r.tryCounter("missing").has_value());
    EXPECT_FALSE(r.tryScalar("missing").has_value());
    EXPECT_FALSE(r.tryCounter("s").has_value());
    EXPECT_FALSE(r.tryScalar("c").has_value());
}

TEST(StatsRegistry, DumpContainsNamesValuesAndDescriptions)
{
    Registry r;
    Counter c;
    c += 42;
    r.add("x.count", &c, "things counted");
    std::ostringstream os;
    r.dump(os);
    EXPECT_NE(os.str().find("x.count"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
    EXPECT_NE(os.str().find("things counted"), std::string::npos);
}

TEST(StatsRegistry, ResetAllZeroesEverything)
{
    Registry r;
    Counter c;
    Scalar s;
    Distribution d;
    d.init(0, 10, 2);
    c += 3;
    s = 1.0;
    d.sample(5);
    r.add("c", &c);
    r.add("s", &s);
    r.add("d", &d);
    r.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(d.samples(), 0u);
}

TEST(StatsRegistry, DuplicateNamePanics)
{
    setLoggingThrows(true);
    Registry r;
    Counter a, b;
    r.add("dup", &a);
    EXPECT_THROW(r.add("dup", &b), PanicError);
    setLoggingThrows(false);
}

TEST(Logging, ConcatenatesHeterogeneousArguments)
{
    setLoggingThrows(true);
    try {
        panic("x=", 42, " y=", 2.5, " z=", "str");
        FAIL();
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: x=42 y=2.5 z=str");
    }
    setLoggingThrows(false);
}

TEST(Logging, FatalThrowsFatalError)
{
    setLoggingThrows(true);
    EXPECT_THROW(fatal("bad config"), FatalError);
    EXPECT_THROW(fatalIf(true, "bad"), FatalError);
    EXPECT_NO_THROW(fatalIf(false, "fine"));
    EXPECT_NO_THROW(panicIf(false, "fine"));
    setLoggingThrows(false);
}

TEST(StatsVector, SubnamesTotalsAndReset)
{
    Vector v;
    v.init(3);
    v.subname(0, "port0");
    v.subname(2, "port2");
    ++v[0];
    v[1] += 4;
    v[2] += 2;
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v[1].value(), 4u);
    EXPECT_EQ(v.total(), 7u);
    EXPECT_EQ(v.subnameOf(0), "port0");
    EXPECT_EQ(v.subnameOf(1), "");
    v.reset();
    EXPECT_EQ(v.total(), 0u);
}

TEST(StatsVector, DumpExpandsElementsAndTotal)
{
    Registry r;
    Vector v;
    v.init(2);
    v.subname(0, "rx");
    v.subname(1, "tx");
    ++v[1];
    r.add("link.pkts", &v, "packets per direction");
    std::ostringstream os;
    r.dump(os);
    EXPECT_NE(os.str().find("link.pkts.rx"), std::string::npos);
    EXPECT_NE(os.str().find("link.pkts.tx"), std::string::npos);
    EXPECT_NE(os.str().find("link.pkts.total"), std::string::npos);
    r.resetAll();
    EXPECT_EQ(v.total(), 0u);
}

TEST(StatsFormula, EvaluatesAtReadTime)
{
    Registry r;
    Counter num, den;
    Formula frac([&] {
        return den.value() == 0
                   ? 0.0
                   : static_cast<double>(num.value()) /
                         static_cast<double>(den.value());
    });
    r.add("frac", &frac, "live ratio", Unit::Ratio);
    EXPECT_DOUBLE_EQ(r.formulaValue("frac"), 0.0);
    num += 1;
    den += 4;
    // No snapshotting: the formula sees its inputs' current values.
    EXPECT_DOUBLE_EQ(r.formulaValue("frac"), 0.25);
    den += 4;
    EXPECT_DOUBLE_EQ(r.formulaValue("frac"), 0.125);
}

TEST(StatsFormula, UnboundReadsZero)
{
    Formula f;
    EXPECT_FALSE(f.bound());
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
}

TEST(StatsRegistry, RemoveUnregisters)
{
    Registry r;
    Formula f([] { return 1.0; });
    r.add("transient", &f);
    EXPECT_TRUE(r.has("transient"));
    EXPECT_TRUE(r.remove("transient"));
    EXPECT_FALSE(r.has("transient"));
    EXPECT_FALSE(r.remove("transient"));
    // The name is free for re-registration (the dd workload's
    // register-in-ctor / remove-in-dtor pattern relies on this).
    Formula g([] { return 2.0; });
    r.add("transient", &g);
    EXPECT_DOUBLE_EQ(r.formulaValue("transient"), 2.0);
}

TEST(StatsRegistry, DumpShowsUnits)
{
    Registry r;
    Counter c;
    Scalar s;
    r.add("bytes", &c, "payload", Unit::Byte);
    r.add("plain", &s, "unitless");
    std::ostringstream os;
    r.dump(os);
    EXPECT_NE(os.str().find("(byte)"), std::string::npos);
    // Unit::None stays silent rather than printing "()".
    EXPECT_EQ(os.str().find("()"), std::string::npos);
    EXPECT_STREQ(unitName(Unit::BitPerSecond), "bit/s");
    EXPECT_STREQ(unitName(Unit::Tick), "tick");
    EXPECT_STREQ(unitName(Unit::None), "");
}

TEST(StatsRegistry, DumpJsonIsVersionedAndComplete)
{
    Registry r;
    Counter c;
    Vector v;
    Histogram h;
    c += 5;
    v.init(2);
    v.subname(0, "a");
    ++v[1];
    h.sample(7);
    r.add("count", &c, "a \"quoted\" desc", Unit::Count);
    r.add("vec", &v, "", Unit::Count);
    r.add("hist", &h, "", Unit::Tick);
    std::ostringstream os;
    r.dumpJson(os, 1234, 2);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"schema\": \"pciesim-stats\""),
              std::string::npos);
    EXPECT_NE(out.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(out.find("\"curTick\": 1234"), std::string::npos);
    EXPECT_NE(out.find("\"epoch\": 2"), std::string::npos);
    EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(out.find("\"total\": 1"), std::string::npos);
    EXPECT_NE(out.find("\"p99\""), std::string::npos);
}

//
// Histogram::quantile boundary behaviour (satellite S4).
//

TEST(StatsHistogram, QuantileBoundariesHitMinAndMax)
{
    Histogram h;
    for (std::uint64_t v : {100, 2000, 30000, 400000})
        h.sample(v);
    EXPECT_EQ(h.quantile(0.0), h.min());
    EXPECT_EQ(h.quantile(1.0), h.max());
    // Out-of-range q is clamped, not undefined behaviour.
    EXPECT_EQ(h.quantile(-1.0), h.min());
    EXPECT_EQ(h.quantile(2.0), h.max());
}

TEST(StatsHistogram, SingleSampleIsEveryQuantile)
{
    Histogram h;
    h.sample(123456);
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0})
        EXPECT_EQ(h.quantile(q), 123456u) << "q=" << q;
}

TEST(StatsHistogram, QuantilesMonotoneOnSkewedData)
{
    // Heavily skewed: most samples tiny, a long expensive tail —
    // the shape of a latency distribution under congestion.
    Histogram h;
    for (int i = 0; i < 900; ++i)
        h.sample(10);
    for (int i = 0; i < 90; ++i)
        h.sample(100000);
    for (int i = 0; i < 10; ++i)
        h.sample(10000000);
    std::uint64_t p50 = h.quantile(0.50);
    std::uint64_t p95 = h.quantile(0.95);
    std::uint64_t p99 = h.quantile(0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_EQ(p50, 10u);
    EXPECT_GE(p99, 100000u);
    EXPECT_LE(p99, h.max());
}

TEST(Ticks, ConversionsAreConsistent)
{
    using namespace pciesim::literals;
    EXPECT_EQ(1_ns, 1000u);
    EXPECT_EQ(1_us, 1000u * 1000u);
    EXPECT_EQ(1_ms, 1000u * 1000u * 1000u);
    EXPECT_EQ(2_s, 2000ull * 1000ull * 1000ull * 1000ull);
    EXPECT_DOUBLE_EQ(ticksToSeconds(seconds(3)), 3.0);
    EXPECT_DOUBLE_EQ(ticksToNs(nanoseconds(7)), 7.0);
}
