/**
 * @file
 * Unit tests for the parallel engine's flight recorder (ISSUE 10,
 * DESIGN.md §14), driven through a two-domain Simulation: the
 * deterministic counters (windows, per-domain events, stall
 * classification, mailbox matrix) must record real traffic, agree
 * with the simulated history, survive a stats dump, zero on a
 * registry epoch reset, and accumulate again afterwards.
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/parallel.hh"
#include "sim/profiler.hh"
#include "sim/simulation.hh"

using namespace pciesim;

namespace
{

constexpr Tick quantum = 100;

/** A Simulation partitioned into two labelled domains with the
 *  engine attached; nothing scheduled yet. */
struct TwoDomainSim
{
    explicit TwoDomainSim(unsigned threads)
    {
        unsigned d1 = sim.addDomain("nic0");
        EXPECT_EQ(d1, 1u);
        sim.setupParallel(threads, quantum);
    }

    Simulation sim;
};

/** Kick off a ping-pong of @p rounds hops starting on domain 0 at
 *  @p at; every hop posts to the OTHER domain, so each one is
 *  exactly one cross-domain mailbox operation. */
struct PingPong
{
    PingPong(TwoDomainSim &t, int rounds, Tick at = 0)
        : start([this, &t, rounds] { hop(t, rounds, 0); },
                "test.start")
    {
        t.sim.domainQueue(0).schedule(&start, at);
    }

    void hop(TwoDomainSim &t, int left, unsigned cur)
    {
        ++fires;
        if (left > 0) {
            t.sim.callAt(1 - cur, t.sim.curTick() + quantum,
                         [this, &t, left, cur] {
                             hop(t, left - 1, 1 - cur);
                         });
        }
    }

    int fires = 0;
    EventFunctionWrapper start;
};

} // namespace

TEST(ParallelTelemetryTest, RecordsWindowsEventsAndMailboxTraffic)
{
    constexpr int rounds = 8;
    TwoDomainSim t(2);
    PingPong pp(t, rounds);
    t.sim.run();
    ASSERT_EQ(pp.fires, rounds + 1);

    ParallelEngine &eng = *t.sim.engine();
    // One window per quantum hop (plus the kick-off window).
    EXPECT_GE(eng.windowsSynced(), static_cast<std::uint64_t>(rounds));
    // Every fire executed on some domain's queue inside a window.
    std::uint64_t events = 0;
    for (unsigned d = 0; d < eng.numDomains(); ++d)
        events += eng.domainEvents(d);
    EXPECT_GE(events, static_cast<std::uint64_t>(rounds + 1));

    // rounds hops, each one mailboxed cross-domain exactly once —
    // both directions carry traffic and the totals balance.
    std::uint64_t sent = 0, received = 0;
    for (unsigned d = 0; d < eng.numDomains(); ++d) {
        sent += eng.mailboxSent(d);
        received += eng.mailboxReceived(d);
    }
    EXPECT_EQ(sent, static_cast<std::uint64_t>(rounds));
    EXPECT_EQ(sent, received);
    EXPECT_GT(eng.mailboxSent(0), 0u);
    EXPECT_GT(eng.mailboxSent(1), 0u);
    EXPECT_EQ(eng.mailboxPair(0, 1) + eng.mailboxPair(1, 0), sent);
    EXPECT_EQ(eng.hottestPeerOf(1).first, 0u);
    EXPECT_GT(eng.hottestPeerOf(1).second, 0u);

    // Perfectly alternating load: imbalance stays near 1.
    EXPECT_GE(eng.loadImbalance(), 1.0);
    EXPECT_LT(eng.loadImbalance(), 2.0);

    // Wall-derived quantities read 0 without --profile.
    EXPECT_EQ(eng.syncOverheadFraction(), 0.0);

    EXPECT_EQ(eng.domainLabel(0), "host");
    EXPECT_EQ(eng.domainLabel(1), "nic0");
}

TEST(ParallelTelemetryTest, StallWindowsClassifyLookaheadStarvation)
{
    // Domain 0 works every window; domain 1 holds one far-future
    // event, so until it fires every window leaves domain 1 with
    // pending work beyond the horizon and nothing executed.
    TwoDomainSim t(1);
    int busy = 0, far = 0;
    std::function<void(int)> churn = [&](int left) {
        ++busy;
        if (left > 0) {
            t.sim.callAt(0, t.sim.curTick() + quantum,
                         [&churn, left] { churn(left - 1); });
        }
    };
    EventFunctionWrapper start([&] { churn(10); }, "test.start");
    EventFunctionWrapper lone([&] { ++far; }, "test.lone");
    t.sim.domainQueue(0).schedule(&start, 0);
    t.sim.domainQueue(1).schedule(&lone, 5 * quantum);

    t.sim.run();
    EXPECT_EQ(busy, 11);
    EXPECT_EQ(far, 1);

    ParallelEngine &eng = *t.sim.engine();
    EXPECT_GT(eng.stallWindows(1), 0u);
    EXPECT_EQ(eng.stallWindows(0), 0u);
}

TEST(ParallelTelemetryTest, CountersSurviveDumpAndResetEpoch)
{
    TwoDomainSim t(2);
    PingPong pp(t, 6);
    t.sim.run();

    ParallelEngine &eng = *t.sim.engine();
    const std::uint64_t windows = eng.windowsSynced();
    const std::uint64_t sent = eng.mailboxSent(0) + eng.mailboxSent(1);
    ASSERT_GT(windows, 0u);
    ASSERT_GT(sent, 0u);

    // A dump is a read: nothing may consume the counters.
    std::ostringstream os;
    t.sim.statsRegistry().dumpJson(os, t.sim.curTick());
    EXPECT_NE(os.str().find("system.parallel.domainEvents"),
              std::string::npos);
    EXPECT_NE(os.str().find("\"nic0\""), std::string::npos);
    EXPECT_EQ(eng.windowsSynced(), windows);
    EXPECT_EQ(eng.mailboxSent(0) + eng.mailboxSent(1), sent);

    // Epoch roll: registered telemetry zeroes with the registry.
    t.sim.statsRegistry().resetAll();
    EXPECT_EQ(eng.windowsSynced(), 0u);
    for (unsigned d = 0; d < eng.numDomains(); ++d) {
        EXPECT_EQ(eng.domainEvents(d), 0u);
        EXPECT_EQ(eng.stallWindows(d), 0u);
        EXPECT_EQ(eng.mailboxSent(d), 0u);
        EXPECT_EQ(eng.mailboxReceived(d), 0u);
    }

    // ...and the next run accumulates from zero, not from the
    // pre-reset totals.
    PingPong again(t, 4, t.sim.curTick() + quantum);
    t.sim.run();
    EXPECT_EQ(again.fires, 5);
    EXPECT_GT(eng.windowsSynced(), 0u);
    EXPECT_LT(eng.windowsSynced(), windows + 4);
    EXPECT_EQ(eng.mailboxSent(0) + eng.mailboxSent(1), 4u);
}
