/**
 * @file
 * Unit tests for the host-side event profiler (exact counts,
 * sampling, deterministic ordering, owner aggregation, JSON shape)
 * and for StatsDumper's epoch banners and final-flush semantics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/profiler.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/stats_dumper.hh"

using namespace pciesim;

namespace
{

/** RAII: every test leaves the global profiler state pristine. */
struct ProfGuard
{
    ProfGuard()
    {
        prof::reset();
        prof::setEnabled(true);
    }

    ~ProfGuard()
    {
        prof::setEnabled(false);
        prof::reset();
        prof::setSamplePeriod(64);
        prof::setReportTimes(true);
    }
};

/** Fires its named event @p fires times, @p period ticks apart. */
class Ticker : public SimObject
{
  public:
    Ticker(Simulation &sim, const std::string &name, int fires,
           Tick period = 10)
        : SimObject(sim, name), remaining_(fires), period_(period),
          event_([this] { fire(); }, name + ".tick")
    {}

    void startup() override { schedule(event_, period_); }

  private:
    void
    fire()
    {
        if (--remaining_ > 0)
            schedule(event_, period_);
    }

    int remaining_;
    Tick period_;
    EventFunctionWrapper event_;
};

const prof::HotSpot *
findSpot(const std::vector<prof::HotSpot> &spots,
         const std::string &name)
{
    for (const prof::HotSpot &h : spots) {
        if (h.name == name)
            return &h;
    }
    return nullptr;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t
countOccurrences(const std::string &haystack,
                 const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + 1))
        ++n;
    return n;
}

} // namespace

TEST(Profiler, CountsAreExactAndFullyAttributed)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with PCIESIM_PROFILING=0";
    ProfGuard guard;

    Simulation sim;
    Ticker a(sim, "a", 7);
    Ticker b(sim, "b", 3);
    sim.run();

    EXPECT_EQ(prof::totalEvents(), 10u);
    EXPECT_EQ(prof::attributedEvents(), 10u);
    auto spots = prof::hotSpots();
    const prof::HotSpot *sa = findSpot(spots, "a.tick");
    const prof::HotSpot *sb = findSpot(spots, "b.tick");
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    EXPECT_EQ(sa->count, 7u);
    EXPECT_EQ(sb->count, 3u);
}

TEST(Profiler, DisabledRecordsNothing)
{
    ProfGuard guard;
    prof::setEnabled(false);

    Simulation sim;
    Ticker a(sim, "a", 5);
    sim.run();

    EXPECT_EQ(prof::totalEvents(), 0u);
    EXPECT_TRUE(prof::hotSpots().empty());
}

TEST(Profiler, SamplePeriodBoundsTimedInvocations)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with PCIESIM_PROFILING=0";
    ProfGuard guard;
    prof::setSamplePeriod(4);

    {
        Simulation sim;
        Ticker a(sim, "a", 10);
        sim.run();
    }
    auto spots = prof::hotSpots();
    const prof::HotSpot *s = findSpot(spots, "a.tick");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->count, 10u);
    // Invocations 0, 4, and 8 land on the 1-in-4 sampler.
    EXPECT_EQ(s->sampled, 3u);

    prof::reset();
    prof::setSamplePeriod(1);
    {
        Simulation sim;
        Ticker a(sim, "a", 10);
        sim.run();
    }
    spots = prof::hotSpots();
    s = findSpot(spots, "a.tick");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->sampled, s->count);
}

TEST(Profiler, ReportTimesOffIsByteDeterministic)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with PCIESIM_PROFILING=0";
    ProfGuard guard;
    prof::setReportTimes(false);

    Simulation sim;
    Ticker bb(sim, "bb", 5);
    Ticker aa(sim, "aa", 5);
    Ticker cc(sim, "cc", 2);
    sim.run();

    auto spots = prof::hotSpots();
    ASSERT_EQ(spots.size(), 3u);
    for (const prof::HotSpot &h : spots) {
        EXPECT_EQ(h.sampledNs, 0u);
        EXPECT_DOUBLE_EQ(h.estMs(), 0.0);
        EXPECT_DOUBLE_EQ(h.avgNs(), 0.0);
    }
    // With times suppressed the sort degrades to count desc, then
    // name asc — a deterministic ordering for golden comparisons.
    EXPECT_EQ(spots[0].name, "aa.tick");
    EXPECT_EQ(spots[1].name, "bb.tick");
    EXPECT_EQ(spots[2].name, "cc.tick");
}

TEST(Profiler, ByOwnerAggregatesOnLastDot)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with PCIESIM_PROFILING=0";
    ProfGuard guard;
    prof::setReportTimes(false);

    Simulation sim;
    Ticker helper(sim, "helper", 1);
    EventFunctionWrapper ea([] {}, std::string("owner.evA"));
    EventFunctionWrapper eb([] {}, std::string("owner.evB"));
    sim.initialize();
    helper.schedule(ea, 1);
    helper.schedule(eb, 2);
    sim.run();

    auto owners = prof::byOwner();
    const prof::HotSpot *o = findSpot(owners, "owner");
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->count, 2u);
    const prof::HotSpot *h = findSpot(owners, "helper");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 1u);
}

TEST(Profiler, WriteJsonTruncatesToTopN)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with PCIESIM_PROFILING=0";
    ProfGuard guard;
    prof::setReportTimes(false);

    Simulation sim;
    Ticker a(sim, "a", 5);
    Ticker b(sim, "b", 3);
    Ticker c(sim, "c", 1);
    sim.run();

    std::ostringstream os;
    prof::writeJson(os, 2);
    std::string out = os.str();
    EXPECT_EQ(countOccurrences(out, "\"name\""), 2u);
    EXPECT_NE(out.find("\"a.tick\""), std::string::npos);
    EXPECT_NE(out.find("\"b.tick\""), std::string::npos);
    EXPECT_EQ(out.find("\"c.tick\""), std::string::npos);
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out.back(), ']');

    std::ostringstream empty;
    prof::reset();
    prof::writeJson(empty, 8);
    EXPECT_EQ(empty.str(), "[]");
}

TEST(Profiler, HotSpotEstimatesScaleSampledTime)
{
    prof::HotSpot h{"x", 100, 10, 1000};
    // 1000 ns across 10 timed calls, scaled to all 100 calls.
    EXPECT_DOUBLE_EQ(h.estMs(), 0.01);
    EXPECT_DOUBLE_EQ(h.avgNs(), 100.0);
    prof::HotSpot unsampled{"y", 100, 0, 0};
    EXPECT_DOUBLE_EQ(unsampled.estMs(), 0.0);
    EXPECT_DOUBLE_EQ(unsampled.avgNs(), 0.0);
}

TEST(StatsDumperTest, EpochBannersResetAndFinalFlush)
{
    const std::string path = "profiler_test_dumper.txt";

    Simulation sim;
    stats::Counter fires;
    sim.statsRegistry().add("ticker.fires", &fires,
                            "ticker invocations");
    StatsDumper dumper(sim, "dumper", 100, path);
    int seen = 0;
    EventFunctionWrapper tick(
        [&] {
            ++fires;
            if (++seen < 5)
                sim.eventq().schedule(&tick, sim.curTick() + 30);
        },
        std::string("count.tick"));
    sim.initialize();
    sim.eventq().schedule(&tick, 30);
    sim.run();

    // Epoch 0 fires at tick 100 (3 ticker fires so far, then a
    // reset); epoch 1 at tick 200 finds the queue empty and stops.
    EXPECT_EQ(dumper.epochsDumped(), 2u);
    EXPECT_EQ(fires.value(), 0u);

    // The final flush must not reset: end-of-run readouts survive.
    fires += 42;
    dumper.dumpEpoch(false);
    EXPECT_EQ(dumper.epochsDumped(), 3u);
    EXPECT_EQ(fires.value(), 42u);

    std::string text = slurp(path);
    EXPECT_EQ(
        countOccurrences(text,
                         "---------- Begin Simulation Statistics"),
        3u);
    EXPECT_EQ(
        countOccurrences(text,
                         "---------- End Simulation Statistics"),
        3u);
    EXPECT_NE(text.find("# epoch 0 curTick 100"),
              std::string::npos);
    EXPECT_NE(text.find("# epoch 1 curTick 200"),
              std::string::npos);
    EXPECT_NE(text.find("# epoch 2 curTick 200"),
              std::string::npos);
    std::remove(path.c_str());
}
