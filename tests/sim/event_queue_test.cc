/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

class ThrowingLogging : public ::testing::Test
{
  protected:
    void SetUp() override { setLoggingThrows(true); }
    void TearDown() override { setLoggingThrows(false); }
};

using EventQueueDeathTest = ThrowingLogging;

} // namespace

TEST(EventQueueTest, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_EQ(q.nextTick(), maxTick);
    EXPECT_FALSE(q.step());
}

TEST(EventQueueTest, ProcessesEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper e1([&] { order.push_back(1); }, "e1");
    EventFunctionWrapper e2([&] { order.push_back(2); }, "e2");
    EventFunctionWrapper e3([&] { order.push_back(3); }, "e3");

    q.schedule(&e2, 200);
    q.schedule(&e3, 300);
    q.schedule(&e1, 100);
    q.run();

    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 300u);
    EXPECT_EQ(q.numProcessed(), 3u);
}

TEST(EventQueueTest, SameTickEventsFireInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");

    q.schedule(&a, 50);
    q.schedule(&b, 50);
    q.schedule(&c, 50);
    q.run();

    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, DescheduledEventDoesNotFire)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper e([&] { ++fired; }, "e");
    q.schedule(&e, 10);
    EXPECT_TRUE(e.scheduled());
    q.deschedule(&e);
    EXPECT_FALSE(e.scheduled());
    q.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RescheduleMovesTheEvent)
{
    EventQueue q;
    Tick fired_at = 0;
    EventFunctionWrapper e([&] { fired_at = q.curTick(); }, "e");
    q.schedule(&e, 10);
    q.reschedule(&e, 500);
    q.run();
    EXPECT_EQ(fired_at, 500u);
    EXPECT_EQ(q.numProcessed(), 1u);
}

TEST(EventQueueTest, RescheduleWorksOnUnscheduledEvent)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper e([&] { ++fired; }, "e");
    q.reschedule(&e, 42);
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, RunHonoursHorizon)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper e1([&] { ++fired; }, "e1");
    EventFunctionWrapper e2([&] { ++fired; }, "e2");
    q.schedule(&e1, 100);
    q.schedule(&e2, 1000);

    q.run(500);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.curTick(), 500u);
    EXPECT_TRUE(e2.scheduled());

    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    EventFunctionWrapper e(
        [&] {
            if (++count < 5)
                q.schedule(&e, q.curTick() + 10);
        },
        "self");
    q.schedule(&e, 10);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.curTick(), 50u);
}

TEST(EventQueueTest, SizeTracksLiveEvents)
{
    EventQueue q;
    EventFunctionWrapper a([] {}, "a");
    EventFunctionWrapper b([] {}, "b");
    q.schedule(&a, 1);
    q.schedule(&b, 2);
    EXPECT_EQ(q.size(), 2u);
    q.deschedule(&a);
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, DescheduleRescheduleCycleStaysConsistent)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper e([&] { ++fired; }, "e");
    for (int i = 0; i < 10; ++i) {
        q.schedule(&e, 100 + i);
        q.deschedule(&e);
    }
    q.schedule(&e, 200);
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.curTick(), 200u);
}

TEST_F(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue q;
    EventFunctionWrapper late([] {}, "late");
    EventFunctionWrapper e([&] { }, "e");
    q.schedule(&e, 100);
    q.run();
    EXPECT_THROW(q.schedule(&late, 50), PanicError);
}

TEST_F(EventQueueDeathTest, DoubleSchedulePanics)
{
    EventQueue q;
    EventFunctionWrapper e([] {}, "e");
    q.schedule(&e, 10);
    EXPECT_THROW(q.schedule(&e, 20), PanicError);
}

TEST_F(EventQueueDeathTest, DescheduleUnscheduledPanics)
{
    EventQueue q;
    EventFunctionWrapper e([] {}, "e");
    EXPECT_THROW(q.deschedule(&e), PanicError);
}
