/**
 * @file
 * Edge-case tests for StatsSampler scheduling: an interval longer
 * than the run, a run with no other events at all, an interval
 * that does not divide the run length, and rate differentiation.
 */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "sim/stats_sampler.hh"

using namespace pciesim;

namespace
{

/** Schedules one no-op event at a fixed tick. */
class OneShot : public SimObject
{
  public:
    OneShot(Simulation &sim, const std::string &name, Tick when)
        : SimObject(sim, name), when_(when),
          event_([] {}, "oneshot.fire")
    {}

    void startup() override { schedule(event_, when_); }

  private:
    Tick when_;
    EventFunctionWrapper event_;
};

} // namespace

TEST(StatsSamplerEdge, IntervalLongerThanRunStillSamplesOnce)
{
    Simulation sim;
    StatsSampler sampler(sim, "sampler", 1000);
    sampler.addGauge("g", [] { return 7.0; });
    OneShot shot(sim, "shot", 100);

    sim.run();

    // The payload ended at tick 100, but the sample scheduled at
    // tick 1000 still fires — exactly once, because the queue is
    // empty afterwards and the sampler must not reschedule.
    ASSERT_EQ(sampler.rows().size(), 1u);
    EXPECT_EQ(sampler.rows()[0].tick, 1000u);
    EXPECT_DOUBLE_EQ(sampler.rows()[0].values[0], 7.0);
    EXPECT_EQ(sim.curTick(), 1000u);
    EXPECT_EQ(
        sim.statsRegistry().counterValue("sampler.samplesTaken"),
        1u);
}

TEST(StatsSamplerEdge, RunWithNoOtherEventsTerminates)
{
    Simulation sim;
    StatsSampler sampler(sim, "sampler", 250);
    sampler.addGauge("g", [] { return 1.0; });

    sim.run();

    // Nothing but the sampler itself: one sample, then the empty
    // queue stops the self-rescheduling timer from spinning the
    // simulation forever.
    ASSERT_EQ(sampler.rows().size(), 1u);
    EXPECT_EQ(sampler.rows()[0].tick, 250u);
    EXPECT_EQ(sim.curTick(), 250u);
}

TEST(StatsSamplerEdge, NoProbesMeansNoSamples)
{
    Simulation sim;
    StatsSampler sampler(sim, "sampler", 250);
    OneShot shot(sim, "shot", 100);

    sim.run();

    // With no probes registered the sampler never schedules at all,
    // so it cannot stretch the run past the last payload event.
    EXPECT_TRUE(sampler.rows().empty());
    EXPECT_EQ(sim.curTick(), 100u);
}

TEST(StatsSamplerEdge, NonDividingIntervalCoversWholeRun)
{
    Simulation sim;
    StatsSampler sampler(sim, "sampler", 300);
    sampler.addGauge("g", [] { return 0.0; });
    OneShot a(sim, "a", 500);
    OneShot b(sim, "b", 1000);

    sim.run();

    // 300 does not divide 1000: samples land at 300/600/900 while
    // payload remains, plus one final sample at 1200 that covers
    // the tail of the run.
    ASSERT_EQ(sampler.rows().size(), 4u);
    EXPECT_EQ(sampler.rows().front().tick, 300u);
    EXPECT_EQ(sampler.rows().back().tick, 1200u);
    for (std::size_t i = 1; i < sampler.rows().size(); ++i)
        EXPECT_EQ(sampler.rows()[i].tick -
                      sampler.rows()[i - 1].tick,
                  300u);
    EXPECT_GE(sampler.rows().back().tick, 1000u);
}

TEST(StatsSamplerEdge, RateProbesDifferentiateAcrossInterval)
{
    Simulation sim;
    StatsSampler sampler(sim, "sampler", microseconds(1));
    double cum = 0.0;
    sampler.addRate("bytes", [&] {
        cum += 100.0;
        return cum;
    });
    OneShot shot(sim, "shot", microseconds(1) + 500000);

    sim.run();

    // The probe reports a cumulative 100 bytes per interval; the
    // sampler divides by the 1 us interval: 1e8 bytes/s each time.
    ASSERT_EQ(sampler.rows().size(), 2u);
    EXPECT_NEAR(sampler.rows()[0].values[0], 1.0e8, 1.0);
    EXPECT_NEAR(sampler.rows()[1].values[0], 1.0e8, 1.0);
}
