/**
 * @file
 * Unit tests for the quantum-synchronized parallel engine
 * (sim/parallel.hh, DESIGN.md Sec. 10), driven directly through a
 * partitioned Simulation rather than a full topology: the edge
 * cases here — an arrival landing exactly on a window boundary, a
 * mailed event descheduled before or after its barrier applies,
 * two domains posting to each other inside one quantum — are the
 * ones a topology only hits under rare timing alignments.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event.hh"
#include "sim/invariant.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"

using namespace pciesim;

namespace
{

constexpr Tick quantum = 100;

/** A Simulation partitioned into two domains with the engine
 *  attached; nothing scheduled yet. */
struct TwoDomainSim
{
    explicit TwoDomainSim(unsigned threads)
    {
        unsigned d1 = sim.addDomain();
        EXPECT_EQ(d1, 1u);
        sim.setupParallel(threads, quantum);
    }

    Simulation sim;
};

} // namespace

TEST(ParallelEngineTest, CrossDomainPostOnExactQuantumBoundary)
{
    // The conservative contract is when >= window end; an arrival
    // exactly AT the end of the posting window (post tick +
    // quantum) is the legal minimum and must fire at its tick, not
    // be rejected or deferred.
    TwoDomainSim t(2);
    Tick fired_at = 0;
    EventFunctionWrapper poster(
        [&] {
            t.sim.callAt(1, t.sim.curTick() + quantum,
                         [&] { fired_at = t.sim.curTick(); });
        },
        "test.poster");
    t.sim.domainQueue(0).schedule(&poster, 10);

    t.sim.run();
    EXPECT_EQ(fired_at, 10 + quantum);
}

TEST(ParallelEngineTest, MailedEventDeschedulesBeforeFiring)
{
    // Schedule-then-deschedule of the same remote event inside one
    // window: both operations sit in the same mailbox and apply in
    // FIFO order at the barrier, so the event must never fire.
    TwoDomainSim t(2);
    int fires = 0;
    EventFunctionWrapper victim([&] { ++fires; }, "test.victim");
    EventFunctionWrapper poster(
        [&] {
            ParallelEngine &eng = *par::activeEngine;
            EventQueue &remote = t.sim.domainQueue(1);
            eng.postSchedule(remote, victim,
                             t.sim.curTick() + 2 * quantum);
            eng.postDeschedule(remote, victim);
        },
        "test.poster");
    t.sim.domainQueue(0).schedule(&poster, 0);

    t.sim.run();
    EXPECT_EQ(fires, 0);
    EXPECT_FALSE(victim.scheduled());
}

TEST(ParallelEngineTest, MailedEventDeschedulesFromLaterWindow)
{
    // The deschedule arrives one window after the schedule: by then
    // the event sits in the remote heap but has not fired (it was
    // posted two quanta out), so the cancel must still win.
    TwoDomainSim t(2);
    int fires = 0;
    EventFunctionWrapper victim([&] { ++fires; }, "test.victim");
    EventFunctionWrapper cancel(
        [&] {
            par::activeEngine->postDeschedule(t.sim.domainQueue(1),
                                              victim);
        },
        "test.cancel");
    EventFunctionWrapper poster(
        [&] {
            par::activeEngine->postSchedule(
                t.sim.domainQueue(1), victim,
                t.sim.curTick() + 3 * quantum);
            // Fire the canceller in the next window.
            t.sim.domainQueue(0).schedule(
                &cancel, t.sim.curTick() + quantum);
        },
        "test.poster");
    t.sim.domainQueue(0).schedule(&poster, 0);

    t.sim.run();
    EXPECT_EQ(fires, 0);
    EXPECT_FALSE(victim.scheduled());
}

TEST(ParallelEngineTest, DescheduleAfterRemoteEventFiredIsTolerated)
{
    // A cancel can race the event in simulated time: posted in the
    // window after the event already fired. applyMailboxes() must
    // treat the no-longer-scheduled event as a no-op.
    TwoDomainSim t(2);
    int fires = 0;
    EventFunctionWrapper victim([&] { ++fires; }, "test.victim");
    EventFunctionWrapper cancel(
        [&] {
            par::activeEngine->postDeschedule(t.sim.domainQueue(1),
                                              victim);
        },
        "test.cancel");
    EventFunctionWrapper poster(
        [&] {
            par::activeEngine->postSchedule(
                t.sim.domainQueue(1), victim,
                t.sim.curTick() + quantum);
            // By 3 quanta the victim has long fired.
            t.sim.domainQueue(0).schedule(
                &cancel, t.sim.curTick() + 3 * quantum);
        },
        "test.poster");
    t.sim.domainQueue(0).schedule(&poster, 0);

    t.sim.run();
    EXPECT_EQ(fires, 1);
    EXPECT_FALSE(victim.scheduled());
}

TEST(ParallelEngineTest, MutualPostsInSameQuantum)
{
    // Both domains post to each other inside the same window, for
    // several rounds: a ping-pong that keeps both heaps non-empty
    // and both mailbox directions full every barrier. Each side
    // must see every message, exactly one quantum apart.
    constexpr int rounds = 16;
    TwoDomainSim t(2);
    std::vector<Tick> fired0, fired1;

    // Each hop re-posts to the other domain until its round count
    // runs out. Declared as std::functions so the lambdas can
    // reference each other.
    std::function<void(int)> hop0, hop1;
    hop0 = [&](int left) {
        fired0.push_back(t.sim.curTick());
        if (left > 0) {
            t.sim.callAt(1, t.sim.curTick() + quantum,
                         [&, left] { hop1(left - 1); });
        }
    };
    hop1 = [&](int left) {
        fired1.push_back(t.sim.curTick());
        if (left > 0) {
            t.sim.callAt(0, t.sim.curTick() + quantum,
                         [&, left] { hop0(left - 1); });
        }
    };

    // Symmetric kick-off: both domains start a chain at tick 0, so
    // in every window each domain both executes and receives.
    EventFunctionWrapper start0([&] { hop0(rounds); },
                                "test.start0");
    EventFunctionWrapper start1([&] { hop1(rounds); },
                                "test.start1");
    t.sim.domainQueue(0).schedule(&start0, 0);
    t.sim.domainQueue(1).schedule(&start1, 0);

    t.sim.run();

    // Chain A fires on domain 0 at even hops, chain B at odd hops
    // (and vice versa on domain 1), so each domain fires at every
    // multiple of the quantum up to the round count.
    ASSERT_EQ(fired0.size(), static_cast<std::size_t>(rounds + 1));
    ASSERT_EQ(fired1.size(), static_cast<std::size_t>(rounds + 1));
    for (int i = 0; i <= rounds; ++i) {
        EXPECT_EQ(fired0[i], static_cast<Tick>(i) * quantum);
        EXPECT_EQ(fired1[i], static_cast<Tick>(i) * quantum);
    }
}

TEST(ParallelEngineTest, ThreadCountDoesNotChangePingPong)
{
    // The same mutual-post workload must produce identical fire
    // ticks for one worker and four (domain count clamps four down
    // to two) — the in-process slice of the determinism contract.
    auto run = [](unsigned threads) {
        TwoDomainSim t(threads);
        std::vector<Tick> fired;
        std::function<void(int)> hop;
        hop = [&](int left) {
            fired.push_back(t.sim.curTick());
            if (left > 0) {
                unsigned dst = left % 2;
                t.sim.callAt(dst, t.sim.curTick() + 2 * quantum,
                             [&, left] { hop(left - 1); });
            }
        };
        EventFunctionWrapper start([&] { hop(12); }, "test.start");
        t.sim.domainQueue(0).schedule(&start, 7);
        t.sim.run();
        return fired;
    };
    EXPECT_EQ(run(1), run(4));
}

TEST(ParallelEngineDeathTest, SubQuantumCrossDomainPostPanics)
{
    // A cross-domain arrival inside the current window means the
    // link's flight latency was below the quantum — the
    // conservative guarantee is broken and audit builds must say
    // so at the first occurrence, not corrupt causality silently.
    if (!auditEnabled)
        GTEST_SKIP() << "audit disabled in this build";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";

    EXPECT_DEATH(
        {
            TwoDomainSim t(1);
            EventFunctionWrapper poster(
                [&] {
                    t.sim.callAt(1, t.sim.curTick() + quantum / 2,
                                 [] {});
                },
                "test.poster");
            t.sim.domainQueue(0).schedule(&poster, 0);
            t.sim.run();
        },
        "inside the window");
}
