/**
 * @file
 * Unit tests for the tracing subsystem: flag parsing, lazy macro
 * argument evaluation, the text sink format, and the Chrome
 * trace-event sink — including a strict JSON validation of a full
 * trace produced by a dd run on the validation topology.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/trace.hh"
#include "topo/storage_system.hh"

using namespace pciesim;

namespace
{

/**
 * A strict (if minimal) recursive-descent JSON parser: accepts
 * exactly the RFC 8259 grammar the Chrome trace loader needs and
 * rejects anything else (trailing commas, unterminated strings,
 * bare words). Validation only; no DOM is built.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s_[pos_])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;
            }
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                s_[pos_] == '\t' || s_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t
countOccurrences(const std::string &haystack,
                 const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + 1))
        ++n;
    return n;
}

/** RAII guard: every test leaves the global trace state clean. */
struct TraceReset
{
    ~TraceReset()
    {
        trace::closeSinks();
        trace::setEnabledFlags(0u);
    }
};

} // namespace

TEST(TraceFlags, ParseNamesAndAll)
{
    EXPECT_EQ(trace::parseFlags(""), 0u);
    EXPECT_EQ(trace::parseFlags("Link"), 1u);
    EXPECT_EQ(trace::parseFlags("Link,Dma"),
              (1u << 0) | (1u << 4));
    EXPECT_EQ(trace::parseFlags("All"),
              (1u << trace::numFlags) - 1u);
    EXPECT_EQ(trace::parseFlags("all"), trace::parseFlags("All"));
    for (std::size_t i = 0; i < trace::numFlags; ++i) {
        auto f = static_cast<trace::Flag>(i);
        EXPECT_EQ(trace::parseFlags(trace::flagName(f)), 1u << i);
    }
}

TEST(TraceFlags, UnknownNameIsFatal)
{
    setLoggingThrows(true);
    EXPECT_THROW(trace::parseFlags("Bogus"), FatalError);
    EXPECT_THROW(trace::parseFlags("Link,Bogus"), FatalError);
    setLoggingThrows(false);
}

#if PCIESIM_TRACING
TEST(TraceMacros, DisabledFlagSkipsArgumentEvaluation)
{
    TraceReset guard;
    trace::openTextSink("trace_test_lazy.txt");
    trace::setEnabledFlags(trace::parseFlags("Link"));

    int evaluations = 0;
    auto expensive = [&evaluations] {
        ++evaluations;
        return 42;
    };
    TRACE_MSG(trace::Flag::Dma, 0, "t", "v=", expensive());
    EXPECT_EQ(evaluations, 0);
    TRACE_MSG(trace::Flag::Link, 0, "t", "v=", expensive());
    EXPECT_EQ(evaluations, 1);
}
#endif // PCIESIM_TRACING

TEST(TraceMacros, NoSinkMeansDisabled)
{
    TraceReset guard;
    trace::setEnabledFlags(trace::parseFlags("All"));
    // No sink open: even enabled flags must not fire.
    EXPECT_FALSE(trace::enabled(trace::Flag::Link));
}

TEST(TraceTextSink, LineFormat)
{
    TraceReset guard;
    std::ostringstream os;
    trace::TextSink sink(os);
    sink.message(1500, "system.link", "Link", "TLP 3 sent");
    sink.begin(2000, "system.dma", "Dma", "dma read");
    sink.end(3000, "system.dma", "Dma");
    std::string out = os.str();
    EXPECT_NE(out.find("1500: system.link: Link: TLP 3 sent"),
              std::string::npos);
    EXPECT_NE(out.find("2000: system.dma: Dma: begin dma read"),
              std::string::npos);
    EXPECT_NE(out.find("3000: system.dma: Dma: end"),
              std::string::npos);
}

TEST(TraceChromeSink, ProducesValidJson)
{
    const std::string path = "trace_test_unit.json";
    {
        trace::ChromeTraceSink sink(path);
        sink.begin(1000000, "obj.a", "Dma", "span \"quoted\"");
        sink.end(2000000, "obj.a", "Dma");
        sink.complete(0, 500000, "obj.b", "Link", "TLP 1");
        sink.counter(3000000, "sampler", "Stats", "goodput", 1.5);
        sink.message(4000000, "obj.a", "Replay", "NAK\nnewline");
        sink.close();
        EXPECT_EQ(sink.eventsWritten(), 8u); // 5 + 3 thread_name
    }
    std::string text = slurp(path);
    JsonChecker checker(text);
    EXPECT_TRUE(checker.valid()) << text;
    // Spans carry the right phase and category markers.
    EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(text.find("\"cat\":\"Link\""), std::string::npos);
    // Ticks (ps) render as fractional microseconds.
    EXPECT_NE(text.find("\"ts\":1.000000"), std::string::npos);
    // Three tracks announced by thread_name metadata.
    EXPECT_EQ(countOccurrences(text, "thread_name"), 3u);
    std::remove(path.c_str());
}

#if PCIESIM_TRACING
TEST(TraceChromeSink, DdRunProducesLinkAndDmaSpans)
{
    TraceReset guard;
    const std::string path = "trace_test_dd.json";

    {
        Simulation sim;
        SystemConfig cfg;
        cfg.traceOut = path;
        cfg.traceFlags = "Link,Dma,Mmio";
        StorageSystem system(sim, cfg);
        DdWorkloadParams dd;
        dd.blockBytes = 64 * 1024;
        double gbps = system.runDd(dd);
        EXPECT_GT(gbps, 0.0);
    }
    trace::closeSinks();

    std::string text = slurp(path);
    JsonChecker checker(text);
    ASSERT_TRUE(checker.valid());
    // Wire occupancy: complete events on the Link flag.
    EXPECT_GT(countOccurrences(text, "\"cat\":\"Link\""), 10u);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    // DMA spans: begin/end pairs on the Dma flag.
    std::size_t dma = countOccurrences(text, "\"cat\":\"Dma\"");
    EXPECT_GE(dma, 2u);
    // Disabled flags stay silent.
    EXPECT_EQ(countOccurrences(text, "\"cat\":\"Switch\""), 0u);
    // The link tracks appear as named threads.
    EXPECT_NE(text.find("system.downLink"), std::string::npos);
    std::remove(path.c_str());
    std::remove("trace_test_lazy.txt");
}
#endif // PCIESIM_TRACING

TEST(TraceChromeSinkDeathTest, FatalFlushesClosingBracket)
{
    TraceReset guard;
    const std::string path = "trace_test_crash.json";
    std::remove(path.c_str());

    // The child opens a Chrome sink, emits an event, and dies in
    // fatal() without ever reaching closeSinks(). The crash hook
    // registered by openChromeSink() must flush the closing bracket
    // on the way down.
    EXPECT_DEATH(
        {
            setLoggingThrows(false);
            trace::openChromeSink(path);
            trace::setEnabledFlags(trace::parseFlags("Link"));
            trace::emitBegin(trace::Flag::Link, 1000000, "obj.a",
                             "doomed span");
            fatal("simulated crash with an open trace");
        },
        "simulated crash with an open trace");

    // The orphaned trace file from the crashed child still parses.
    std::string text = slurp(path);
    ASSERT_FALSE(text.empty());
    JsonChecker checker(text);
    EXPECT_TRUE(checker.valid()) << text;
    EXPECT_NE(text.find("doomed span"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceSampler, EmitsRowsAndCounters)
{
    TraceReset guard;
    const std::string path = "trace_test_sampler.json";

    Simulation sim;
    SystemConfig cfg;
    cfg.traceOut = path;
    cfg.traceFlags = "Stats";
    cfg.statsSampleInterval = microseconds(5);
    StorageSystem system(sim, cfg);
    DdWorkloadParams dd;
    dd.blockBytes = 256 * 1024;
    system.runDd(dd);

    StatsSampler *sampler = system.sampler();
    ASSERT_NE(sampler, nullptr);
    EXPECT_FALSE(sampler->rows().empty());
    ASSERT_EQ(sampler->seriesNames().size(), 5u);
    EXPECT_EQ(sampler->seriesNames()[0], "goodputBytesPerSec");
    double peak = 0.0;
    for (const auto &row : sampler->rows()) {
        ASSERT_EQ(row.values.size(), 5u);
        peak = std::max(peak, row.values[0]);
    }
    // dd moved data, so some interval saw nonzero goodput.
    EXPECT_GT(peak, 0.0);

    trace::closeSinks();
    std::string text = slurp(path);
    JsonChecker checker(text);
    ASSERT_TRUE(checker.valid());
#if PCIESIM_TRACING
    EXPECT_GT(countOccurrences(text, "\"ph\":\"C\""), 0u);
    EXPECT_NE(text.find("goodputBytesPerSec"), std::string::npos);
#endif
    std::remove(path.c_str());
}
