/**
 * @file
 * Unit tests for Simulation / SimObject life cycle.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/sim_object.hh"
#include "sim/simulation.hh"

using namespace pciesim;

namespace
{

class ProbeObject : public SimObject
{
  public:
    ProbeObject(Simulation &sim, const std::string &name,
                std::vector<std::string> &log)
        : SimObject(sim, name), log_(log),
          tickEvent_([this] { log_.push_back(this->name() + ".tick"); },
                     name + ".tick")
    {}

    void init() override { log_.push_back(name() + ".init"); }

    void
    startup() override
    {
        log_.push_back(name() + ".startup");
        schedule(tickEvent_, 100);
    }

  private:
    std::vector<std::string> &log_;
    EventFunctionWrapper tickEvent_;
};

} // namespace

TEST(SimulationTest, InitRunsBeforeStartupAcrossAllObjects)
{
    Simulation sim;
    std::vector<std::string> log;
    ProbeObject a(sim, "a", log);
    ProbeObject b(sim, "b", log);

    sim.run();

    ASSERT_EQ(log.size(), 6u);
    EXPECT_EQ(log[0], "a.init");
    EXPECT_EQ(log[1], "b.init");
    EXPECT_EQ(log[2], "a.startup");
    EXPECT_EQ(log[3], "b.startup");
    EXPECT_EQ(log[4], "a.tick");
    EXPECT_EQ(log[5], "b.tick");
}

TEST(SimulationTest, InitializeIsIdempotent)
{
    Simulation sim;
    std::vector<std::string> log;
    ProbeObject a(sim, "a", log);
    sim.initialize();
    sim.initialize();
    EXPECT_EQ(log.size(), 2u); // init + startup once
}

TEST(SimulationTest, RunForAdvancesRelativeTime)
{
    Simulation sim;
    std::vector<std::string> log;
    ProbeObject a(sim, "a", log); // ticks at 100
    sim.runFor(50);
    EXPECT_EQ(sim.curTick(), 50u);
    EXPECT_EQ(log.size(), 2u);
    sim.runFor(50);
    EXPECT_EQ(sim.curTick(), 100u);
    EXPECT_EQ(log.size(), 3u);
}

TEST(SimulationTest, OwnAdoptsObjects)
{
    Simulation sim;
    std::vector<std::string> log;
    auto *obj = sim.own(
        std::make_unique<ProbeObject>(sim, "owned", log));
    EXPECT_EQ(obj->name(), "owned");
    sim.run();
    EXPECT_EQ(log.size(), 3u);
}

TEST(SimulationTest, SimObjectScheduleHelpers)
{
    Simulation sim;
    std::vector<std::string> log;
    ProbeObject a(sim, "a", log);
    sim.initialize();

    int fired = 0;
    EventFunctionWrapper e([&] { ++fired; }, "helper");
    a.schedule(e, 10);
    sim.run();
    EXPECT_EQ(fired, 1);

    a.scheduleAbs(e, sim.curTick() + 5);
    sim.run();
    EXPECT_EQ(fired, 2);
}
