/**
 * @file
 * Unit tests for the seeded per-object PRNG (sim/rng.hh): the
 * xoshiro256** generator behind fault injection. Determinism across
 * instances with the same seed is the property everything else
 * (reproducible fault runs) builds on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "sim/rng.hh"

using namespace pciesim;

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDifferentStreams)
{
    Rng a(1);
    Rng b(2);
    unsigned same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_EQ(same, 0u);
}

TEST(RngTest, ZeroSeedStillProducesEntropy)
{
    // splitmix64 seeding guarantees a nonzero xoshiro state even
    // for seed 0 (the all-zero state is a fixed point).
    Rng r(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(r.next());
    EXPECT_EQ(seen.size(), 100u);
}

TEST(RngTest, UniformIsInHalfOpenUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5; 10k samples land well within 0.03.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(RngTest, BernoulliRespectsProbability)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
    unsigned hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.bernoulli(0.1) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.1, 0.02);
}
