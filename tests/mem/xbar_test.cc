/**
 * @file
 * Unit tests for the crossbar (MemBus / IOBus model).
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "mem/xbar.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

namespace
{

struct XBarFixture : ::testing::Test
{
    XBarFixture()
        : xbar(sim, "xbar"),
          cpu("cpu"),
          devA("devA", {AddrRange{0x1000, 0x2000}}),
          devB("devB", {AddrRange{0x2000, 0x3000}})
    {
        cpu.bind(xbar.addSlavePort("cpuSlave"));
        xbar.addMasterPort("aMaster").bind(devA);
        xbar.addMasterPort("bMaster").bind(devB);
    }

    Simulation sim;
    XBar xbar;
    RecordingMasterPort cpu;
    RecordingSlavePort devA;
    RecordingSlavePort devB;
};

} // namespace

TEST_F(XBarFixture, RoutesByAddressRange)
{
    sim.initialize();
    PacketPtr pa = Packet::makeRequest(MemCmd::ReadReq, 0x1800, 4);
    PacketPtr pb = Packet::makeRequest(MemCmd::ReadReq, 0x2800, 4);
    EXPECT_TRUE(cpu.sendTimingReq(pa));
    EXPECT_TRUE(cpu.sendTimingReq(pb));
    sim.run();
    ASSERT_EQ(devA.requests.size(), 1u);
    ASSERT_EQ(devB.requests.size(), 1u);
    EXPECT_EQ(devA.requests[0]->addr(), 0x1800u);
    EXPECT_EQ(devB.requests[0]->addr(), 0x2800u);
}

TEST_F(XBarFixture, AppliesFrontendLatency)
{
    sim.initialize();
    PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, 0x1000, 4);
    Tick sent_at = sim.curTick();
    cpu.sendTimingReq(p);
    sim.run();
    ASSERT_EQ(devA.requests.size(), 1u);
    // Default frontend latency is 5 ns.
    EXPECT_GE(sim.curTick(), sent_at + nanoseconds(5));
}

TEST_F(XBarFixture, ResponseReturnsToOriginatingPort)
{
    devA.autoRespond = true;
    sim.initialize();
    PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, 0x1000, 4);
    cpu.sendTimingReq(p);
    sim.run();
    ASSERT_EQ(cpu.responses.size(), 1u);
    EXPECT_TRUE(cpu.responses[0]->isResponse());
    EXPECT_EQ(cpu.responses[0].get(), p.get());
}

TEST_F(XBarFixture, RoutedRangesIsUnionOfPeers)
{
    sim.initialize();
    AddrRangeList ranges = xbar.routedRanges();
    EXPECT_EQ(ranges.size(), 2u);
    EXPECT_TRUE(listContains(ranges, 0x1500));
    EXPECT_TRUE(listContains(ranges, 0x2500));
    EXPECT_FALSE(listContains(ranges, 0x3500));
}

TEST_F(XBarFixture, UnroutableAddressPanics)
{
    setLoggingThrows(true);
    sim.initialize();
    PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, 0x9000, 4);
    EXPECT_THROW(cpu.sendTimingReq(p), PanicError);
    setLoggingThrows(false);
}

TEST(XBarDefaultPort, ClaimsUnmatchedAddresses)
{
    Simulation sim;
    XBar xbar(sim, "xbar");
    RecordingMasterPort cpu("cpu");
    RecordingSlavePort dev("dev", {AddrRange{0x1000, 0x2000}});
    RecordingSlavePort fallback("fallback", {});

    cpu.bind(xbar.addSlavePort("cpuSlave"));
    xbar.addMasterPort("devMaster").bind(dev);
    MasterPort &def = xbar.addMasterPort("defMaster");
    def.bind(fallback);
    xbar.setDefaultPort(def);
    sim.initialize();

    PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, 0x9000, 4);
    cpu.sendTimingReq(p);
    sim.run();
    ASSERT_EQ(fallback.requests.size(), 1u);
}

TEST(XBarBackpressure, RefusesWhenEgressQueueFullThenRetries)
{
    Simulation sim;
    XBarParams params;
    params.queueCapacity = 2;
    XBar xbar(sim, "xbar", params);
    RecordingMasterPort cpu("cpu");
    RecordingSlavePort dev("dev", {AddrRange{0, 0x10000}});
    dev.refuseRequests = 1000000; // jam the device

    cpu.bind(xbar.addSlavePort("cpuSlave"));
    xbar.addMasterPort("devMaster").bind(dev);
    sim.initialize();

    // Two packets fill the egress queue; the third is refused.
    EXPECT_TRUE(cpu.sendTimingReq(Packet::makeRequest(
        MemCmd::WriteReq, 0, 4)));
    EXPECT_TRUE(cpu.sendTimingReq(Packet::makeRequest(
        MemCmd::WriteReq, 4, 4)));
    sim.run();
    EXPECT_FALSE(cpu.sendTimingReq(Packet::makeRequest(
        MemCmd::WriteReq, 8, 4)));

    // Unjam: the queue drains and the waiting source is retried.
    dev.refuseRequests = 0;
    EventFunctionWrapper unjam([&] { dev.sendRetryReq(); }, "unjam");
    sim.eventq().schedule(&unjam, sim.curTick() + 100);
    sim.run();
    EXPECT_GE(cpu.reqRetries, 1u);
    EXPECT_EQ(dev.requests.size(), 2u);
}

TEST(XBarConfig, UnboundPortIsFatalAtInit)
{
    setLoggingThrows(true);
    Simulation sim;
    XBar xbar(sim, "xbar");
    xbar.addMasterPort("dangling");
    EXPECT_THROW(sim.initialize(), FatalError);
    setLoggingThrows(false);
}
