/**
 * @file
 * Unit tests for the memory packet / TLP.
 */

#include <gtest/gtest.h>

#include "mem/packet.hh"

using namespace pciesim;

struct CmdCase
{
    MemCmd cmd;
    bool isRequest;
    bool isRead;
    bool needsResponse;
};

class PacketCmdTest : public ::testing::TestWithParam<CmdCase>
{};

TEST_P(PacketCmdTest, Classification)
{
    const auto &c = GetParam();
    EXPECT_EQ(cmdIsRequest(c.cmd), c.isRequest);
    EXPECT_EQ(cmdIsResponse(c.cmd), !c.isRequest);
    EXPECT_EQ(cmdIsRead(c.cmd), c.isRead);
    EXPECT_EQ(cmdIsWrite(c.cmd), !c.isRead);
}

INSTANTIATE_TEST_SUITE_P(
    AllCommands, PacketCmdTest,
    ::testing::Values(
        CmdCase{MemCmd::ReadReq, true, true, true},
        CmdCase{MemCmd::ReadResp, false, true, false},
        CmdCase{MemCmd::WriteReq, true, false, true},
        CmdCase{MemCmd::WriteResp, false, false, false},
        CmdCase{MemCmd::ConfigReadReq, true, true, true},
        CmdCase{MemCmd::ConfigReadResp, false, true, false},
        CmdCase{MemCmd::ConfigWriteReq, true, false, true},
        CmdCase{MemCmd::ConfigWriteResp, false, false, false}));

TEST(PacketTest, MessageRequestIsPosted)
{
    PacketPtr p = Packet::makeRequest(MemCmd::MessageReq, 0xfee0, 4);
    EXPECT_TRUE(p->isRequest());
    EXPECT_FALSE(p->needsResponse());
}

TEST(PacketTest, MakeResponseFlipsCommandInPlace)
{
    PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, 0x100, 64);
    Packet *raw = p.get();
    p->makeResponse();
    EXPECT_EQ(p->cmd(), MemCmd::ReadResp);
    EXPECT_EQ(p.get(), raw); // same object
    EXPECT_EQ(p->addr(), 0x100u);
    EXPECT_EQ(p->size(), 64u);
}

TEST(PacketTest, TlpPayloadFollowsDataBearingRule)
{
    // Paper Sec. V-C: payload is 0 for a read request or a write
    // response, and the transfer size for a write request or read
    // response.
    PacketPtr rd = Packet::makeRequest(MemCmd::ReadReq, 0, 64);
    EXPECT_EQ(rd->tlpPayloadSize(), 0u);
    rd->makeResponse();
    EXPECT_EQ(rd->tlpPayloadSize(), 64u);

    PacketPtr wr = Packet::makeRequest(MemCmd::WriteReq, 0, 64);
    EXPECT_EQ(wr->tlpPayloadSize(), 64u);
    wr->makeResponse();
    EXPECT_EQ(wr->tlpPayloadSize(), 0u);
}

TEST(PacketTest, PciBusNumberDefaultsToMinusOne)
{
    // Paper Sec. V-A: "we create a PCI bus number field in the
    // packet class, and initialize it to -1".
    PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, 0, 4);
    EXPECT_EQ(p->pciBusNumber(), -1);
    p->setPciBusNumber(3);
    EXPECT_EQ(p->pciBusNumber(), 3);
    // The bus number survives the response conversion.
    p->makeResponse();
    EXPECT_EQ(p->pciBusNumber(), 3);
}

TEST(PacketTest, TypedPayloadAccessors)
{
    PacketPtr p = Packet::makeRequest(MemCmd::WriteReq, 0, 8);
    p->set<std::uint32_t>(0xdeadbeef);
    EXPECT_TRUE(p->hasData());
    EXPECT_EQ(p->get<std::uint32_t>(), 0xdeadbeefu);

    std::uint8_t raw[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    p->setData(raw, 8);
    EXPECT_EQ(p->get<std::uint64_t>(), 0x0807060504030201ull);
    EXPECT_EQ(p->dataSize(), 8u);
}

TEST(PacketTest, ReferenceCountingFreesExactlyOnce)
{
    std::uint64_t before = Packet::liveCount();
    {
        PacketPtr a = Packet::makeRequest(MemCmd::ReadReq, 0, 4);
        EXPECT_EQ(Packet::liveCount(), before + 1);
        PacketPtr b = a;
        PacketPtr c = std::move(b);
        EXPECT_FALSE(b);
        EXPECT_TRUE(c);
        EXPECT_EQ(Packet::liveCount(), before + 1);
        c.reset();
        EXPECT_EQ(Packet::liveCount(), before + 1); // a still holds
    }
    EXPECT_EQ(Packet::liveCount(), before);
}

TEST(PacketTest, SelfAssignmentIsSafe)
{
    PacketPtr a = Packet::makeRequest(MemCmd::ReadReq, 0, 4);
    PacketPtr &ref = a;
    a = ref;
    EXPECT_TRUE(a);
}

TEST(PacketTest, UniqueIdsAndToString)
{
    PacketPtr a = Packet::makeRequest(MemCmd::ReadReq, 0x30, 4);
    PacketPtr b = Packet::makeRequest(MemCmd::WriteReq, 0x40, 4);
    EXPECT_NE(a->id(), b->id());
    EXPECT_NE(a->toString().find("ReadReq"), std::string::npos);
    EXPECT_NE(b->toString().find("WriteReq"), std::string::npos);
}
