/**
 * @file
 * Unit tests for the DRAM model.
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "mem/simple_memory.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

namespace
{

struct MemFixture : ::testing::Test
{
    MemFixture()
    {
        SimpleMemoryParams params;
        params.range = {0x1000, 0x100000};
        params.latency = nanoseconds(50);
        params.bytesPerTick = 64.0 / 1000.0; // 64 B per ns
        mem = std::make_unique<SimpleMemory>(sim, "mem", params);
        cpu.bind(mem->port());
    }

    Simulation sim;
    std::unique_ptr<SimpleMemory> mem;
    RecordingMasterPort cpu{"cpu"};
};

} // namespace

TEST_F(MemFixture, RespondsAfterLatencyPlusOccupancy)
{
    sim.initialize();
    PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, 0x1000, 64);
    EXPECT_TRUE(cpu.sendTimingReq(p));
    sim.run();
    ASSERT_EQ(cpu.responses.size(), 1u);
    // 64 B / (64 B/ns) = 1 ns occupancy + 50 ns latency.
    EXPECT_EQ(sim.curTick(), nanoseconds(51));
}

TEST_F(MemFixture, BandwidthRegulationSerializesBursts)
{
    sim.initialize();
    std::vector<Tick> times;
    cpu.onResponse = [&](const PacketPtr &) {
        times.push_back(sim.curTick());
    };
    for (int i = 0; i < 3; ++i) {
        cpu.sendTimingReq(
            Packet::makeRequest(MemCmd::ReadReq, 0x1000 + 64 * i, 64));
    }
    sim.run();
    ASSERT_EQ(times.size(), 3u);
    // Bank occupancy accumulates: 1, 2, 3 ns + latency.
    EXPECT_EQ(times[0], nanoseconds(51));
    EXPECT_EQ(times[1], nanoseconds(52));
    EXPECT_EQ(times[2], nanoseconds(53));
}

TEST_F(MemFixture, WritesGetResponsesTooNonPosted)
{
    sim.initialize();
    PacketPtr p = Packet::makeRequest(MemCmd::WriteReq, 0x2000, 64);
    cpu.sendTimingReq(p);
    sim.run();
    ASSERT_EQ(cpu.responses.size(), 1u);
    EXPECT_EQ(cpu.responses[0]->cmd(), MemCmd::WriteResp);
}

TEST_F(MemFixture, FunctionalStoreRoundTrips)
{
    sim.initialize();
    PacketPtr w = Packet::makeRequest(MemCmd::WriteReq, 0x3000, 8);
    w->set<std::uint64_t>(0x1122334455667788ull);
    cpu.sendTimingReq(w);
    sim.run();

    PacketPtr r = Packet::makeRequest(MemCmd::ReadReq, 0x3000, 8);
    cpu.sendTimingReq(r);
    sim.run();
    ASSERT_EQ(cpu.responses.size(), 2u);
    EXPECT_EQ(cpu.responses[1]->get<std::uint64_t>(),
              0x1122334455667788ull);

    // Backdoor agrees.
    EXPECT_EQ(mem->readByte(0x3000), 0x88);
    EXPECT_EQ(mem->readByte(0x3007), 0x11);
}

TEST_F(MemFixture, BackdoorWriteVisibleToTimingRead)
{
    sim.initialize();
    mem->writeByte(0x4000, 0xab);
    PacketPtr r = Packet::makeRequest(MemCmd::ReadReq, 0x4000, 1);
    cpu.sendTimingReq(r);
    sim.run();
    EXPECT_EQ(cpu.responses[0]->get<std::uint8_t>(), 0xab);
}

TEST_F(MemFixture, OutOfRangeAccessPanics)
{
    setLoggingThrows(true);
    sim.initialize();
    PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, 0x10, 4);
    EXPECT_THROW(cpu.sendTimingReq(p), PanicError);
    setLoggingThrows(false);
}

TEST(SimpleMemoryBackpressure, RefusesWhenQueueFull)
{
    Simulation sim;
    SimpleMemoryParams params;
    params.range = {0, 0x10000};
    params.queueCapacity = 2;
    params.latency = microseconds(1);
    SimpleMemory mem(sim, "mem", params);
    RecordingMasterPort cpu("cpu");
    cpu.refuseResponses = 1000000; // never accept, keep queue full
    cpu.bind(mem.port());
    sim.initialize();

    EXPECT_TRUE(cpu.sendTimingReq(
        Packet::makeRequest(MemCmd::ReadReq, 0, 4)));
    EXPECT_TRUE(cpu.sendTimingReq(
        Packet::makeRequest(MemCmd::ReadReq, 4, 4)));
    EXPECT_FALSE(cpu.sendTimingReq(
        Packet::makeRequest(MemCmd::ReadReq, 8, 4)));
}
