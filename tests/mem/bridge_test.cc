/**
 * @file
 * Unit tests for the bridge (and, through it, the IOCache).
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "mem/bridge.hh"
#include "mem/io_cache.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

TEST(BridgeTest, ForwardsRequestsAfterDelay)
{
    Simulation sim;
    BridgeParams params;
    params.delay = nanoseconds(50);
    Bridge bridge(sim, "bridge", params);
    RecordingMasterPort src("src");
    RecordingSlavePort dst("dst", {AddrRange{0, 0x1000}});
    src.bind(bridge.slavePort());
    bridge.masterPort().bind(dst);
    sim.initialize();

    PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, 0x10, 4);
    EXPECT_TRUE(src.sendTimingReq(p));
    sim.run();
    ASSERT_EQ(dst.requests.size(), 1u);
    EXPECT_EQ(sim.curTick(), nanoseconds(50));
}

TEST(BridgeTest, ForwardsResponsesBack)
{
    Simulation sim;
    Bridge bridge(sim, "bridge");
    RecordingMasterPort src("src");
    RecordingSlavePort dst("dst", {AddrRange{0, 0x1000}});
    dst.autoRespond = true;
    src.bind(bridge.slavePort());
    bridge.masterPort().bind(dst);
    sim.initialize();

    PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, 0x10, 4);
    src.sendTimingReq(p);
    sim.run();
    ASSERT_EQ(src.responses.size(), 1u);
    // Request delay + response delay = 100 ns.
    EXPECT_EQ(sim.curTick(), nanoseconds(100));
}

TEST(BridgeTest, ExplicitRangesOverridePassthrough)
{
    Simulation sim;
    BridgeParams params;
    params.ranges = {AddrRange{0x4000, 0x5000}};
    Bridge bridge(sim, "bridge", params);
    RecordingMasterPort src("src");
    RecordingSlavePort dst("dst", {AddrRange{0, 0x1000}});
    src.bind(bridge.slavePort());
    bridge.masterPort().bind(dst);
    sim.initialize();

    AddrRangeList ranges = bridge.slavePort().getAddrRanges();
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges.front(), (AddrRange{0x4000, 0x5000}));
}

TEST(BridgeTest, PassthroughRangesComeFromPeer)
{
    Simulation sim;
    Bridge bridge(sim, "bridge");
    RecordingMasterPort src("src");
    RecordingSlavePort dst("dst", {AddrRange{0x7000, 0x8000}});
    src.bind(bridge.slavePort());
    bridge.masterPort().bind(dst);
    sim.initialize();

    AddrRangeList ranges = bridge.slavePort().getAddrRanges();
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges.front(), (AddrRange{0x7000, 0x8000}));
}

TEST(BridgeTest, RefusesWhenRequestQueueFullAndRetriesLater)
{
    Simulation sim;
    BridgeParams params;
    params.reqQueueCapacity = 2;
    Bridge bridge(sim, "bridge", params);
    RecordingMasterPort src("src");
    RecordingSlavePort dst("dst", {AddrRange{0, 0x10000}});
    dst.refuseRequests = 1000000;
    src.bind(bridge.slavePort());
    bridge.masterPort().bind(dst);
    sim.initialize();

    EXPECT_TRUE(src.sendTimingReq(
        Packet::makeRequest(MemCmd::WriteReq, 0, 4)));
    EXPECT_TRUE(src.sendTimingReq(
        Packet::makeRequest(MemCmd::WriteReq, 4, 4)));
    sim.run();
    EXPECT_FALSE(src.sendTimingReq(
        Packet::makeRequest(MemCmd::WriteReq, 8, 4)));
    EXPECT_EQ(bridge.reqRefusals(), 1u);

    dst.refuseRequests = 0;
    EventFunctionWrapper unjam([&] { dst.sendRetryReq(); }, "unjam");
    sim.eventq().schedule(&unjam, sim.curTick() + 10);
    sim.run();
    EXPECT_GE(src.reqRetries, 1u);
    EXPECT_EQ(dst.requests.size(), 2u);
}

TEST(IOCacheTest, ServiceIntervalThrottlesDrainRate)
{
    Simulation sim;
    IOCacheParams params;
    params.latency = nanoseconds(10);
    params.serviceInterval = nanoseconds(100);
    params.queueCapacity = 8;
    IOCache cache(sim, "ioc", params);
    RecordingMasterPort src("src");
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    std::vector<Tick> arrival;
    mem.onRequest = [&](const PacketPtr &) {
        arrival.push_back(sim.curTick());
    };
    src.bind(cache.slavePort());
    cache.masterPort().bind(mem);
    sim.initialize();

    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(src.sendTimingReq(
            Packet::makeRequest(MemCmd::WriteReq, 64 * i, 64)));
    }
    sim.run();
    ASSERT_EQ(arrival.size(), 4u);
    // First after the lookup latency, then one per service interval.
    EXPECT_EQ(arrival[0], nanoseconds(10));
    EXPECT_EQ(arrival[1], nanoseconds(110));
    EXPECT_EQ(arrival[2], nanoseconds(210));
    EXPECT_EQ(arrival[3], nanoseconds(310));
}
