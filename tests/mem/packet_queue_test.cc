/**
 * @file
 * Unit tests for the bounded outbound packet queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/packet_queue.hh"
#include "sim/simulation.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

PacketPtr
mkPkt(Addr a = 0)
{
    return Packet::makeRequest(MemCmd::ReadReq, a, 4);
}

} // namespace

TEST(PacketQueueTest, EmitsAtReadyTime)
{
    Simulation sim;
    std::vector<std::pair<Tick, Addr>> sent;
    PacketQueue q(sim.eventq(), "q",
                  [&](const PacketPtr &p) {
                      sent.push_back({sim.curTick(), p->addr()});
                      return true;
                  });
    q.push(mkPkt(1), 100);
    q.push(mkPkt(2), 250);
    sim.run();
    ASSERT_EQ(sent.size(), 2u);
    EXPECT_EQ(sent[0], (std::pair<Tick, Addr>{100, 1}));
    EXPECT_EQ(sent[1], (std::pair<Tick, Addr>{250, 2}));
}

TEST(PacketQueueTest, ServiceIntervalPacesEmissions)
{
    Simulation sim;
    std::vector<Tick> times;
    PacketQueue q(sim.eventq(), "q",
                  [&](const PacketPtr &) {
                      times.push_back(sim.curTick());
                      return true;
                  },
                  0, 50);
    for (int i = 0; i < 4; ++i)
        q.push(mkPkt(), 10);
    sim.run();
    ASSERT_EQ(times.size(), 4u);
    EXPECT_EQ(times[0], 10u);
    EXPECT_EQ(times[1], 60u);
    EXPECT_EQ(times[2], 110u);
    EXPECT_EQ(times[3], 160u);
}

TEST(PacketQueueTest, CapacityAndFull)
{
    Simulation sim;
    PacketQueue q(sim.eventq(), "q",
                  [](const PacketPtr &) { return true; }, 2);
    EXPECT_FALSE(q.full());
    q.push(mkPkt(), 100);
    q.push(mkPkt(), 100);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.size(), 2u);
}

TEST(PacketQueueTest, BlocksOnRefusalAndResumesOnRetry)
{
    Simulation sim;
    int refusals_left = 2;
    std::vector<Tick> sent;
    PacketQueue q(sim.eventq(), "q",
                  [&](const PacketPtr &) {
                      if (refusals_left > 0) {
                          --refusals_left;
                          return false;
                      }
                      sent.push_back(sim.curTick());
                      return true;
                  });
    q.push(mkPkt(), 10);
    sim.run();
    EXPECT_TRUE(sent.empty()); // blocked after refusal
    EXPECT_EQ(refusals_left, 1);

    // Retry at t=500: refused again, still blocked.
    EventFunctionWrapper retry1([&] { q.retryNotify(); }, "r1");
    sim.eventq().schedule(&retry1, 500);
    sim.run();
    EXPECT_TRUE(sent.empty());

    EventFunctionWrapper retry2([&] { q.retryNotify(); }, "r2");
    sim.eventq().schedule(&retry2, 600);
    sim.run();
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0], 600u);
}

TEST(PacketQueueTest, OnSpaceFreedFiresPerEmission)
{
    Simulation sim;
    int freed = 0;
    PacketQueue q(sim.eventq(), "q",
                  [](const PacketPtr &) { return true; }, 4);
    q.setOnSpaceFreed([&] { ++freed; });
    q.push(mkPkt(), 1);
    q.push(mkPkt(), 2);
    sim.run();
    EXPECT_EQ(freed, 2);
}

TEST(PacketQueueTest, PushIntoFullQueuePanics)
{
    setLoggingThrows(true);
    Simulation sim;
    PacketQueue q(sim.eventq(), "q",
                  [](const PacketPtr &) { return true; }, 1);
    q.push(mkPkt(), 100);
    EXPECT_THROW(q.push(mkPkt(), 100), PanicError);
    setLoggingThrows(false);
}

TEST(PacketQueueTest, ReadyInThePastSendsNow)
{
    Simulation sim;
    EventFunctionWrapper advance([] {}, "advance");
    sim.eventq().schedule(&advance, 1000);
    sim.run();

    std::vector<Tick> sent;
    PacketQueue q(sim.eventq(), "q",
                  [&](const PacketPtr &) {
                      sent.push_back(sim.curTick());
                      return true;
                  });
    q.push(mkPkt(), 10); // ready tick already passed
    sim.run();
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0], 1000u);
}
