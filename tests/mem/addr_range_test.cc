/**
 * @file
 * Unit tests for address ranges.
 */

#include <gtest/gtest.h>

#include "mem/addr_range.hh"

using namespace pciesim;

TEST(AddrRangeTest, BasicProperties)
{
    AddrRange r{0x1000, 0x2000};
    EXPECT_EQ(r.start(), 0x1000u);
    EXPECT_EQ(r.end(), 0x2000u);
    EXPECT_EQ(r.size(), 0x1000u);
    EXPECT_FALSE(r.empty());
}

TEST(AddrRangeTest, DefaultIsEmpty)
{
    AddrRange r;
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.contains(0));
    EXPECT_FALSE(r.intersects(AddrRange{0, 100}));
}

TEST(AddrRangeTest, ContainsIsHalfOpen)
{
    AddrRange r{100, 200};
    EXPECT_FALSE(r.contains(99));
    EXPECT_TRUE(r.contains(100));
    EXPECT_TRUE(r.contains(199));
    EXPECT_FALSE(r.contains(200));
}

struct IntersectCase
{
    AddrRange a;
    AddrRange b;
    bool intersects;
    bool a_covers_b;
};

class AddrRangeIntersect
    : public ::testing::TestWithParam<IntersectCase>
{};

TEST_P(AddrRangeIntersect, MatchesExpectation)
{
    const auto &c = GetParam();
    EXPECT_EQ(c.a.intersects(c.b), c.intersects);
    EXPECT_EQ(c.b.intersects(c.a), c.intersects);
    EXPECT_EQ(c.a.covers(c.b), c.a_covers_b);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, AddrRangeIntersect,
    ::testing::Values(
        IntersectCase{{0, 100}, {100, 200}, false, false},   // adjacent
        IntersectCase{{0, 100}, {50, 150}, true, false},     // overlap
        IntersectCase{{0, 100}, {20, 80}, true, true},       // nested
        IntersectCase{{0, 100}, {0, 100}, true, true},       // equal
        IntersectCase{{0, 100}, {200, 300}, false, false},   // disjoint
        IntersectCase{{0, 100}, {}, false, false},           // empty b
        IntersectCase{{}, {0, 100}, false, false}));         // empty a

TEST(AddrRangeTest, ListHelpers)
{
    AddrRangeList l{{0, 10}, {20, 30}};
    EXPECT_TRUE(listContains(l, 5));
    EXPECT_TRUE(listContains(l, 25));
    EXPECT_FALSE(listContains(l, 15));
    EXPECT_FALSE(listHasOverlap(l));

    l.push_back({25, 40});
    EXPECT_TRUE(listHasOverlap(l));
}

TEST(AddrRangeTest, ToStringIsHex)
{
    AddrRange r{0x10, 0x20};
    EXPECT_EQ(r.toString(), "[0x10, 0x20)");
}
