/**
 * @file
 * Tests for the packet freelist pool: recycle correctness, the
 * live-count leak check's survival under pooling, pool shrink/stats
 * behaviour, and — under AddressSanitizer — proof that poisoned
 * freelist blocks turn pooled use-after-free into a fatal report.
 *
 * When the pool runs in pass-through mode (ASan without the
 * poisoning interface; see packet.hh) there is no recycling, so the
 * pointer-reuse and freelist-stat assertions are skipped.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/packet.hh"
#include "pcie/pcie_pkt.hh"

using namespace pciesim;

namespace
{

/** Skip tests that assert freelist recycling when it is disabled. */
#define SKIP_IF_PASS_THROUGH()                                      \
    do {                                                            \
        if (PacketPool::passThrough)                                \
            GTEST_SKIP() << "pool is pass-through under ASan "      \
                            "without poisoning support";            \
    } while (0)

} // namespace

TEST(PacketPoolTest, RecyclesStorage)
{
    SKIP_IF_PASS_THROUGH();
    PacketPool pool(64);
    void *a = pool.allocate();
    void *b = pool.allocate();
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.freeBlocks(), 0u);

    pool.deallocate(a);
    EXPECT_EQ(pool.freeBlocks(), 1u);

    // LIFO recycling: the freshly freed (cache-hot) block comes back.
    void *c = pool.allocate();
    EXPECT_EQ(c, a);
    EXPECT_EQ(pool.freeBlocks(), 0u);

    pool.deallocate(b);
    pool.deallocate(c);
    EXPECT_EQ(pool.freeBlocks(), 2u);
    pool.shrink();
    EXPECT_EQ(pool.freeBlocks(), 0u);
}

TEST(PacketPoolTest, CountsAllocationsAndRecycles)
{
    SKIP_IF_PASS_THROUGH();
    PacketPool pool(32);
    void *a = pool.allocate();
    EXPECT_EQ(pool.totalAllocs(), 1u);
    EXPECT_EQ(pool.recycledAllocs(), 0u);

    pool.deallocate(a);
    void *b = pool.allocate();
    EXPECT_EQ(pool.totalAllocs(), 2u);
    EXPECT_EQ(pool.recycledAllocs(), 1u);
    pool.deallocate(b);
    pool.shrink();
}

TEST(PacketPoolTest, TinyBlocksStillHoldTheFreelistLink)
{
    SKIP_IF_PASS_THROUGH();
    // Blocks are rounded up to pointer size so the intrusive link
    // always fits.
    PacketPool pool(1);
    EXPECT_GE(pool.blockSize(), sizeof(void *));
    void *a = pool.allocate();
    pool.deallocate(a);
    EXPECT_EQ(pool.allocate(), a);
    pool.deallocate(a);
    pool.shrink();
}

TEST(PacketPoolTest, PacketStorageIsPooled)
{
    SKIP_IF_PASS_THROUGH();
    std::uint64_t before_allocs = Packet::pool().totalAllocs();
    void *first;
    {
        PacketPtr pkt = Packet::makeRequest(MemCmd::ReadReq, 0x1000, 64);
        first = pkt.get();
    }
    // The packet died; its block is on the freelist and the next
    // packet reuses it.
    EXPECT_GT(Packet::pool().totalAllocs(), before_allocs);
    std::size_t free_after_death = Packet::pool().freeBlocks();
    EXPECT_GE(free_after_death, 1u);

    PacketPtr again = Packet::makeRequest(MemCmd::WriteReq, 0x2000, 64);
    EXPECT_EQ(static_cast<void *>(again.get()), first);
    EXPECT_EQ(Packet::pool().freeBlocks(), free_after_death - 1);
}

TEST(PacketPoolTest, LiveCountLeakCheckSurvivesPooling)
{
    std::uint64_t base = Packet::liveCount();
    {
        PacketPtr a = Packet::makeRequest(MemCmd::ReadReq, 0x0, 64);
        PacketPtr b = Packet::makeRequest(MemCmd::WriteReq, 0x40, 64);
        EXPECT_EQ(Packet::liveCount(), base + 2);
    }
    EXPECT_EQ(Packet::liveCount(), base);

    // A deliberately leaked packet still shows up in the live count
    // even though its storage came from the pool.
    auto *leak = new PacketPtr(
        Packet::makeRequest(MemCmd::ReadReq, 0x80, 64));
    EXPECT_EQ(Packet::liveCount(), base + 1);
    delete leak;
    EXPECT_EQ(Packet::liveCount(), base);
}

TEST(PacketPoolTest, ManyPacketsRecycleInsteadOfGrowing)
{
    SKIP_IF_PASS_THROUGH();
    Packet::pool().shrink();
    std::uint64_t recycled_before = Packet::pool().recycledAllocs();
    for (int i = 0; i < 1000; ++i) {
        PacketPtr pkt = Packet::makeRequest(MemCmd::ReadReq,
                                            0x1000 + 64 * i, 64);
        pkt->makeResponse();
    }
    // After the first iteration seeds the freelist, every further
    // allocation is a recycle; the pool never holds more than one
    // free block.
    EXPECT_GE(Packet::pool().recycledAllocs(), recycled_before + 999);
    EXPECT_LE(Packet::pool().freeBlocks(), 1u);
}

TEST(PacketPoolTest, PciePktSharesThePoolMachinery)
{
    SKIP_IF_PASS_THROUGH();
    PacketPtr tlp = Packet::makeRequest(MemCmd::WriteReq, 0x1000, 64);
    auto *wrapped = new PciePkt(PciePkt::makeTlp(tlp, 7));
    void *storage = wrapped;
    EXPECT_TRUE(wrapped->isTlp());
    delete wrapped;

    auto *next = new PciePkt(PciePkt::makeDllp(DllpType::Ack, 3));
    EXPECT_EQ(static_cast<void *>(next), storage);
    delete next;
}

#if PCIESIM_POOL_POISONING

TEST(PacketPoolAsanDeathTest, PooledUseAfterFreeIsReported)
{
    // Without poisoning this bug is silent: the pool's operator
    // delete keeps the storage alive on the freelist, so the stale
    // read returns a recycled object instead of faulting.
    const Packet *stale = nullptr;
    {
        PacketPtr pkt = Packet::makeRequest(MemCmd::ReadReq,
                                            0x1000, 64);
        stale = pkt.get();
    }
    // The block now sits poisoned on the freelist; any access must
    // die with a use-after-poison report at this exact address.
    EXPECT_DEATH(
        {
            volatile Addr a = stale->addr();
            (void)a;
        },
        "use-after-poison");
}

TEST(PacketPoolAsanDeathTest, BarePoolBlockIsPoisonedWhileParked)
{
    PacketPool pool(64);
    auto *p = static_cast<volatile unsigned char *>(pool.allocate());
    p[8] = 0xab; // in-use: writable, no report
    pool.deallocate(const_cast<unsigned char *>(p));
    EXPECT_DEATH(
        {
            volatile unsigned char byte = p[8];
            (void)byte;
        },
        "use-after-poison");
}

#endif // PCIESIM_POOL_POISONING
