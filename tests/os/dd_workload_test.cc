/**
 * @file
 * Unit tests for the dd workload model and the IDE driver's command
 * splitting, on the validation topology.
 */

#include <gtest/gtest.h>

#include "topo/storage_system.hh"

using namespace pciesim;
using namespace pciesim::literals;

TEST(IdeDriverTest, SplitsRequestsIntoPrdSizedCommands)
{
    // 1 MB = 16 commands of 128 sectors (the 64 KB PRD limit).
    Simulation sim;
    StorageSystem system(sim, SystemConfig{});
    system.runDd([] {
        DdWorkloadParams dd;
        dd.blockBytes = 1 << 20;
        return dd;
    }());
    EXPECT_EQ(system.ideDriver().commandsIssued(), 16u);
    EXPECT_EQ(system.disk().commandsCompleted(), 16u);
}

TEST(IdeDriverTest, OddSizesStillRoundTrip)
{
    // A non-power-of-two sector count: 65 KB = 130 sectors =
    // one 128-sector command plus a 2-sector tail command.
    Simulation sim;
    StorageSystem system(sim, SystemConfig{});
    DdWorkloadParams dd;
    dd.blockBytes = 130 * 512;
    system.runDd(dd);
    EXPECT_EQ(system.ideDriver().commandsIssued(), 2u);
    EXPECT_EQ(system.disk().bytesTransferred(), 130u * 512);
}

TEST(DdWorkloadTest, MultipleBlocksAccumulate)
{
    Simulation sim;
    StorageSystem system(sim, SystemConfig{});
    system.boot();

    DdWorkloadParams dd;
    dd.blockBytes = 256 * 1024;
    dd.count = 3;
    DdWorkload workload(system.kernel(), system.ideDriver(), dd);
    bool done = false;
    workload.run([&] { done = true; });
    sim.run();

    EXPECT_TRUE(done);
    EXPECT_TRUE(workload.finished());
    EXPECT_EQ(workload.bytesTransferred(), 3u * 256 * 1024);
    EXPECT_EQ(system.disk().bytesTransferred(), 3u * 256 * 1024);
    EXPECT_GT(workload.throughputGbps(), 0.1);
}

TEST(DdWorkloadTest, OverheadLowersReportedThroughput)
{
    auto run = [](Tick invocation_overhead) {
        Simulation sim;
        StorageSystem system(sim, SystemConfig{});
        DdWorkloadParams dd;
        dd.blockBytes = 256 * 1024;
        dd.invocationOverhead = invocation_overhead;
        return system.runDd(dd);
    };
    double cheap = run(0);
    double costly = run(2_ms);
    EXPECT_GT(cheap, costly);
}

TEST(DdWorkloadTest, LargerBlocksAmortizeFixedCosts)
{
    auto run = [](std::uint64_t bytes) {
        Simulation sim;
        StorageSystem system(sim, SystemConfig{});
        DdWorkloadParams dd;
        dd.blockBytes = bytes;
        return system.runDd(dd);
    };
    // The paper's Fig. 9 block-size trend, as a property.
    EXPECT_GT(run(4 << 20), run(1 << 20));
}

TEST(DdWorkloadTest, ElapsedMatchesThroughput)
{
    Simulation sim;
    StorageSystem system(sim, SystemConfig{});
    DdWorkloadParams dd;
    dd.blockBytes = 512 * 1024;
    double gbps = system.runDd(dd);
    (void)gbps;

    // throughput = bytes * 8 / elapsed must be self-consistent.
    DdWorkload workload(system.kernel(), system.ideDriver(), dd);
    bool done = false;
    workload.run([&] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
    double recomputed = static_cast<double>(
                            workload.bytesTransferred()) * 8.0 /
                        ticksToSeconds(workload.elapsed()) / 1e9;
    EXPECT_NEAR(workload.throughputGbps(), recomputed, 1e-9);
}
