/**
 * @file
 * Unit tests for the kernel model: timed MMIO, deferral, DMA
 * allocation, and functional memory access - exercised on the NIC
 * topology.
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "topo/nic_system.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

TEST(KernelTest, AllocDmaRespectsAlignment)
{
    Simulation sim;
    NicSystem system(sim, NicSystemConfig{});
    Kernel &k = system.kernel();

    Addr a = k.allocDma(100, 64);
    Addr b = k.allocDma(10, 4096);
    Addr c = k.allocDma(1, 1);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GT(c, b);
}

TEST(KernelTest, FunctionalMemoryRoundTrip)
{
    Simulation sim;
    NicSystem system(sim, NicSystemConfig{});
    Kernel &k = system.kernel();

    k.memWrite<std::uint32_t>(0x80200000, 0xcafef00d);
    EXPECT_EQ(k.memRead<std::uint32_t>(0x80200000), 0xcafef00du);

    std::uint8_t blob[5] = {1, 2, 3, 4, 5};
    k.memWriteBlob(0x80200100, blob, 5);
    std::uint8_t out[5] = {};
    k.memReadBlob(0x80200100, out, 5);
    EXPECT_EQ(std::memcmp(blob, out, 5), 0);
}

TEST(KernelTest, DeferRunsAfterDelay)
{
    Simulation sim;
    NicSystem system(sim, NicSystemConfig{});
    Kernel &k = system.kernel();
    sim.initialize();

    Tick fired = 0;
    k.defer(5_us, [&] { fired = k.curTick(); });
    sim.run();
    EXPECT_EQ(fired, 5_us);
}

TEST(KernelTest, MmioOpsCompleteInOrder)
{
    Simulation sim;
    NicSystem system(sim, NicSystemConfig{});
    system.boot();
    Kernel &k = system.kernel();
    Addr base = system.nicMmioBase();

    std::vector<int> order;
    k.mmioWrite(base + nicreg::tdh, 4, 7, [&] {
        order.push_back(1);
    });
    k.mmioRead(base + nicreg::tdh, 4, [&](std::uint64_t v) {
        order.push_back(2);
        EXPECT_EQ(v, 7u);
    });
    k.mmioRead(base + nicreg::status, 4, [&](std::uint64_t v) {
        order.push_back(3);
        EXPECT_NE(v & nicreg::statusLu, 0u);
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_GE(k.mmioOps(), 3u);
}

TEST(KernelTest, MmioCompletionTimeoutAbortsWithAllOnes)
{
    Simulation sim;
    PciHost host(sim, "host");
    IntController gic(sim, "gic", IntControllerParams{});
    SimpleMemory dram(sim, "dram", SimpleMemoryParams{});
    RecordingMasterPort dramSrc{"dramSrc"};
    dramSrc.bind(dram.port());

    KernelParams kp;
    kp.completionTimeout = 50_us;
    Kernel k(sim, "kernel", host, gic, dram, kp);
    // The MMIO target accepts requests but never completes them.
    RecordingSlavePort dead{"dead",
                            {AddrRange{0x40000000, 0x40001000}}};
    k.cpuPort().bind(dead);
    sim.initialize();

    std::uint64_t read_value = 0;
    bool wrote = false;
    unsigned hook_reads = 0, hook_writes = 0;
    k.setMmioTimeoutHook([&](bool is_read) {
        if (is_read)
            ++hook_reads;
        else
            ++hook_writes;
    });
    k.mmioRead(0x40000000, 4,
               [&](std::uint64_t v) { read_value = v; });
    k.mmioWrite(0x40000004, 4, 1, [&] { wrote = true; });
    sim.run();

    // The platform error hook saw both timeouts, typed correctly.
    EXPECT_EQ(hook_reads, 1u);
    EXPECT_EQ(hook_writes, 1u);

    // Both ops were failed by the completion timer instead of
    // hanging the queue; the read saw the all-ones abort value.
    EXPECT_EQ(read_value, ~0ULL);
    EXPECT_TRUE(wrote);
    EXPECT_EQ(k.completionTimeouts(), 2u);
    // Aborted loads leave their own breadcrumb: only the read
    // counts (the write completed blind, nothing was fabricated).
    EXPECT_EQ(k.abortedReads(), 1u);
    EXPECT_EQ(k.mmioOps(), 0u);
    EXPECT_GE(sim.curTick(), 100_us);

    // A completion straggling in after its op was retired must be
    // dropped, not treated as a protocol violation.
    ASSERT_EQ(dead.requests.size(), 2u);
    dead.requests[0]->makeResponse();
    EXPECT_TRUE(dead.sendTimingResp(dead.requests[0]));
    EXPECT_EQ(k.completionTimeouts(), 2u);
}

TEST(KernelTest, CompletionOnExactTimeoutTickIsLate)
{
    // The timeout event is scheduled at issue time; a completion
    // landing on the very tick it expires was inserted later and so
    // fires after it (same-tick FIFO). The boundary is therefore
    // "late": the op aborts with all-ones and the completion is
    // dropped.
    Simulation sim;
    PciHost host(sim, "host");
    IntController gic(sim, "gic", IntControllerParams{});
    SimpleMemory dram(sim, "dram", SimpleMemoryParams{});
    RecordingMasterPort dramSrc{"dramSrc"};
    dramSrc.bind(dram.port());

    KernelParams kp;
    kp.completionTimeout = 50_us;
    Kernel k(sim, "kernel", host, gic, dram, kp);
    RecordingSlavePort dead{"dead",
                            {AddrRange{0x40000000, 0x40001000}}};
    k.cpuPort().bind(dead);
    sim.initialize();

    const Tick exact = kp.mmioIssueLatency + kp.completionTimeout;
    std::uint64_t read_value = 0;
    k.mmioRead(0x40000000, 4,
               [&](std::uint64_t v) { read_value = v; });
    // Arm after the issue so the completion's event is enqueued
    // behind the already-scheduled timeout.
    k.defer(100_ns, [&] {
        ASSERT_EQ(dead.requests.size(), 1u);
        k.defer(exact - 100_ns, [&] {
            EXPECT_EQ(k.curTick(), exact);
            dead.requests[0]->makeResponse();
            dead.requests[0]->set<std::uint32_t>(0x1234abcd);
            EXPECT_TRUE(dead.sendTimingResp(dead.requests[0]));
        });
    });
    sim.run();

    EXPECT_EQ(read_value, ~0ULL);
    EXPECT_EQ(k.completionTimeouts(), 1u);
    EXPECT_EQ(k.mmioOps(), 0u);
}

TEST(KernelTest, CompletionOneTickBeforeTimeoutCompletes)
{
    // Companion bound: one tick (1 ps) earlier the completion still
    // wins, delivers its payload, and disarms the timer.
    Simulation sim;
    PciHost host(sim, "host");
    IntController gic(sim, "gic", IntControllerParams{});
    SimpleMemory dram(sim, "dram", SimpleMemoryParams{});
    RecordingMasterPort dramSrc{"dramSrc"};
    dramSrc.bind(dram.port());

    KernelParams kp;
    kp.completionTimeout = 50_us;
    Kernel k(sim, "kernel", host, gic, dram, kp);
    RecordingSlavePort dead{"dead",
                            {AddrRange{0x40000000, 0x40001000}}};
    k.cpuPort().bind(dead);
    sim.initialize();

    const Tick exact = kp.mmioIssueLatency + kp.completionTimeout;
    std::uint64_t read_value = 0;
    k.mmioRead(0x40000000, 4,
               [&](std::uint64_t v) { read_value = v; });
    k.defer(100_ns, [&] {
        ASSERT_EQ(dead.requests.size(), 1u);
        k.defer(exact - 100_ns - 1, [&] {
            EXPECT_EQ(k.curTick(), exact - 1);
            dead.requests[0]->makeResponse();
            dead.requests[0]->set<std::uint32_t>(0x1234abcd);
            EXPECT_TRUE(dead.sendTimingResp(dead.requests[0]));
        });
    });
    sim.run();

    EXPECT_EQ(read_value, 0x1234abcdu);
    EXPECT_EQ(k.completionTimeouts(), 0u);
    EXPECT_EQ(k.mmioOps(), 1u);
}

TEST(KernelTest, ConfigAccessGoesThroughPciHost)
{
    Simulation sim;
    NicSystem system(sim, NicSystemConfig{});
    Kernel &k = system.kernel();
    // The NIC registered at bus 1 device 0.
    EXPECT_EQ(k.configRead(Bdf{1, 0, 0}, 0x00, 2), 0x8086u);
    EXPECT_EQ(k.configRead(Bdf{1, 0, 0}, 0x02, 2), 0x10d3u);
    // Absent device: all ones.
    EXPECT_EQ(k.configRead(Bdf{5, 0, 0}, 0x00, 2), 0xffffu);
}

TEST(KernelTest, EnumerationIsIdempotent)
{
    Simulation sim;
    NicSystem system(sim, NicSystemConfig{});
    Kernel &k = system.kernel();
    const auto &r1 = k.enumerate();
    std::size_t n = r1.functions.size();
    const auto &r2 = k.enumerate();
    EXPECT_EQ(r2.functions.size(), n);
}
