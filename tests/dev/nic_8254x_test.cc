/**
 * @file
 * Unit tests for the 8254x-pcie NIC model (paper Sec. IV):
 * capability chain, EEPROM, interrupt logic, and the descriptor
 * TX/RX data path.
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "dev/nic_8254x.hh"
#include "mem/simple_memory.hh"
#include "pci/capability.hh"
#include "pci/config_regs.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

namespace
{

struct NicFixture : ::testing::Test
{
    NicFixture()
    {
        nic = std::make_unique<Nic8254xPcie>(sim, "nic");

        SimpleMemoryParams mp;
        mp.range = {0x80000000, 0x90000000};
        mem = std::make_unique<SimpleMemory>(sim, "mem", mp);

        EtherWireParams wp;
        wp.latency = 100_ns;
        wire = std::make_unique<EtherWire>(sim, "wire", wp);

        cpu.bind(nic->pioPort());
        nic->dmaPort().bind(mem->port());
        nic->attachWire(*wire, 0);
        nic->setIntxSink([this](bool v) { irqLine = v; });

        nic->configWrite(cfg::bar0, 4, mmioBase);
        nic->configWrite(cfg::command, 2,
                         cfg::cmdMemEnable | cfg::cmdBusMaster);
    }

    void
    reg32(Addr offset, std::uint32_t v)
    {
        PacketPtr p = Packet::makeRequest(MemCmd::WriteReq,
                                          mmioBase + offset, 4);
        p->set<std::uint32_t>(v);
        ASSERT_TRUE(cpu.sendTimingReq(p));
    }

    std::uint32_t
    read32(Addr offset)
    {
        PacketPtr p = Packet::makeRequest(MemCmd::ReadReq,
                                          mmioBase + offset, 4);
        EXPECT_TRUE(cpu.sendTimingReq(p));
        // Step until *this* packet's response is *delivered* back
        // (the device flips it synchronously; delivery also drains
        // earlier write responses from the PIO queue).
        while ((cpu.responses.empty() || cpu.responses.back() != p) &&
               sim.eventq().step()) {
        }
        return p->get<std::uint32_t>();
    }

    /** Write a 16 B descriptor into DRAM. */
    void
    writeDesc(Addr desc, std::uint64_t d0, std::uint64_t d1)
    {
        for (unsigned i = 0; i < 8; ++i) {
            mem->writeByte(desc + i, (d0 >> (8 * i)) & 0xff);
            mem->writeByte(desc + 8 + i, (d1 >> (8 * i)) & 0xff);
        }
    }

    static constexpr Addr mmioBase = 0x40000000;
    static constexpr Addr txRing = 0x80001000;
    static constexpr Addr rxRing = 0x80002000;
    static constexpr Addr txBuf = 0x80010000;
    static constexpr Addr rxBuf = 0x80020000;

    Simulation sim;
    std::unique_ptr<Nic8254xPcie> nic;
    std::unique_ptr<SimpleMemory> mem;
    std::unique_ptr<EtherWire> wire;
    RecordingMasterPort cpu{"cpu"};
    bool irqLine = false;
};

} // namespace

TEST_F(NicFixture, CapabilityChainMatchesPaperTemplate)
{
    const ConfigSpace &cs = nic->config();
    EXPECT_EQ(nic->configRead(cfg::deviceId, 2), 0x10d3u);
    EXPECT_EQ(CapabilityWalker::count(cs), 4u);
    EXPECT_EQ(cs.raw8(cfg::capPtr), 0xc8); // PM first
    EXPECT_EQ(CapabilityWalker::find(cs, cfg::capIdPm), 0xc8u);
    EXPECT_EQ(CapabilityWalker::find(cs, cfg::capIdMsi), 0xd0u);
    EXPECT_EQ(CapabilityWalker::find(cs, cfg::capIdPcie), 0xe0u);
    EXPECT_EQ(CapabilityWalker::find(cs, cfg::capIdMsix), 0xa0u);
}

TEST_F(NicFixture, EepromReadViaEerd)
{
    sim.initialize();
    reg32(nicreg::eerd, nicreg::eerdStart | (0 << 8));
    std::uint32_t v = read32(nicreg::eerd);
    EXPECT_NE(v & nicreg::eerdDone, 0u);
    EXPECT_EQ(v >> 16, 0x1200u); // first MAC word
}

TEST_F(NicFixture, InterruptFollowsIcrAndMask)
{
    sim.initialize();
    reg32(nicreg::ims, nicreg::icrTxdw);

    // Cause set without mask match: no interrupt.
    // (Drive ICR indirectly through a TX completion below; here
    // check that reading ICR clears it.)
    EXPECT_EQ(read32(nicreg::icr), 0u);
    EXPECT_FALSE(irqLine);
}

TEST_F(NicFixture, TxDescriptorFlowTransmitsAndWritesBack)
{
    sim.initialize();
    // One descriptor: 256 B frame, EOP | RS.
    writeDesc(txRing, txBuf,
              256 | (static_cast<std::uint64_t>(
                         nicreg::txCmdEop | nicreg::txCmdRs) << 24));

    reg32(nicreg::tdbal, txRing & 0xffffffff);
    reg32(nicreg::tdbah, 0);
    reg32(nicreg::tdlen, 4 * nicreg::descSize);
    reg32(nicreg::tdh, 0);
    reg32(nicreg::tdt, 0);
    reg32(nicreg::ims, nicreg::icrTxdw);
    reg32(nicreg::tctl, nicreg::ctlEn);
    reg32(nicreg::tdt, 1); // doorbell
    sim.run();

    EXPECT_EQ(nic->framesTransmitted(), 1u);
    EXPECT_EQ(wire->framesDelivered() + wire->framesDropped(), 1u);
    EXPECT_EQ(read32(nicreg::tdh), 1u);
    // DD written back into the descriptor status byte.
    EXPECT_NE(mem->readByte(txRing + 12) & nicreg::staDd, 0u);
    // TXDW interrupt raised (loopback RX may also be pending).
    EXPECT_TRUE(irqLine);
    std::uint32_t icr = read32(nicreg::icr);
    EXPECT_NE(icr & nicreg::icrTxdw, 0u);
    EXPECT_FALSE(irqLine); // reading ICR deasserts
}

TEST_F(NicFixture, RxPathWritesDataAndDescriptor)
{
    sim.initialize();
    // RX ring with 4 descriptors, one armed buffer.
    writeDesc(rxRing, rxBuf, 0);
    reg32(nicreg::rdbal, rxRing & 0xffffffff);
    reg32(nicreg::rdbah, 0);
    reg32(nicreg::rdlen, 4 * nicreg::descSize);
    reg32(nicreg::rdh, 0);
    reg32(nicreg::rdt, 1);
    reg32(nicreg::ims, nicreg::icrRxt0);
    reg32(nicreg::rctl, nicreg::ctlEn);
    sim.run();

    EtherFrame frame;
    frame.size = 128;
    EXPECT_TRUE(wire->transmit(1, frame)); // far end -> NIC
    sim.run();

    EXPECT_EQ(nic->framesReceived(), 1u);
    EXPECT_EQ(read32(nicreg::rdh), 1u);
    // Descriptor writeback: length and DD|EOP status.
    EXPECT_EQ(mem->readByte(rxRing + 8), 128);
    EXPECT_NE(mem->readByte(rxRing + 12) & nicreg::staDd, 0u);
    EXPECT_TRUE(irqLine);
}

TEST_F(NicFixture, RxWithoutDescriptorsCountsMissed)
{
    sim.initialize();
    reg32(nicreg::rctl, nicreg::ctlEn); // enabled, but RDH == RDT
    sim.run();

    EtherFrame frame;
    frame.size = 64;
    wire->transmit(1, frame);
    sim.run();
    EXPECT_EQ(nic->framesReceived(), 0u);
    EXPECT_EQ(nic->framesMissed(), 1u);
}

TEST_F(NicFixture, RxDisabledRejectsFrames)
{
    sim.initialize();
    EtherFrame frame;
    frame.size = 64;
    wire->transmit(1, frame);
    sim.run();
    EXPECT_EQ(wire->framesDropped(), 1u);
}

TEST_F(NicFixture, ResetClearsRingsAndMask)
{
    sim.initialize();
    reg32(nicreg::tdt, 5);
    reg32(nicreg::ims, 0xff);
    reg32(nicreg::ctrl, nicreg::ctrlRst);
    sim.run();
    EXPECT_EQ(read32(nicreg::tdt), 0u);
    EXPECT_EQ(read32(nicreg::ims), 0u);
    EXPECT_EQ(read32(nicreg::ctrl) & nicreg::ctrlRst, 0u);
}

TEST_F(NicFixture, StatusReportsLinkUp)
{
    sim.initialize();
    EXPECT_NE(read32(nicreg::status) & nicreg::statusLu, 0u);
}
