/**
 * @file
 * Unit tests for the IDE disk model: register semantics, the BMDMA
 * command flow with PRD fetch, the 4 KB chunk barrier, and the
 * completion interrupt.
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "dev/ide_disk.hh"
#include "mem/simple_memory.hh"
#include "pci/config_regs.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

namespace
{

struct DiskFixture : ::testing::Test
{
    DiskFixture()
    {
        IdeDiskParams params;
        params.mediaLatency = 1_us;
        params.chunkOverhead = 0; // pure transfer timing
        disk = std::make_unique<IdeDisk>(sim, "disk", params);

        SimpleMemoryParams mp;
        mp.range = {0x80000000, 0x90000000};
        mem = std::make_unique<SimpleMemory>(sim, "mem", mp);

        cpu.bind(disk->pioPort());
        disk->dmaPort().bind(mem->port());
        disk->setIntxSink([this](bool v) { irqLine = v; });

        // "Enumerate" by hand: assign BARs, enable decoding + DMA.
        disk->configWrite(cfg::bar0, 4, cmdBase | 1);
        disk->configWrite(cfg::bar1, 4, ctrlBase | 1);
        disk->configWrite(cfg::bar4, 4, bmBase | 1);
        disk->configWrite(cfg::command, 2,
                          cfg::cmdIoEnable | cfg::cmdMemEnable |
                          cfg::cmdBusMaster);
    }

    /**
     * Register writes take effect synchronously in the device's
     * recvTimingReq; no draining needed (the response is consumed
     * whenever the simulation next runs).
     */
    void
    regWrite(Addr addr, std::uint8_t v)
    {
        PacketPtr p = Packet::makeRequest(MemCmd::WriteReq, addr, 1);
        p->set<std::uint8_t>(v);
        ASSERT_TRUE(cpu.sendTimingReq(p));
    }

    void
    regWrite32(Addr addr, std::uint32_t v)
    {
        PacketPtr p = Packet::makeRequest(MemCmd::WriteReq, addr, 4);
        p->set<std::uint32_t>(v);
        ASSERT_TRUE(cpu.sendTimingReq(p));
    }

    /** Read a register, stepping only until the response arrives
     *  (so mid-command state stays observable). */
    std::uint8_t
    regRead(Addr addr)
    {
        PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, addr, 1);
        EXPECT_TRUE(cpu.sendTimingReq(p));
        // Step until *this* packet's response is *delivered* back
        // (the device flips it to a response synchronously, so the
        // command alone is no progress signal; the delivery drains
        // any earlier write responses from the PIO queue too).
        while ((cpu.responses.empty() || cpu.responses.back() != p) &&
               sim.eventq().step()) {
        }
        return p->get<std::uint8_t>();
    }

    /** Set up a PRD covering @p bytes at the buffer address. */
    void
    writePrd(std::uint32_t bytes)
    {
        std::uint64_t prd = bufAddr |
                            (static_cast<std::uint64_t>(bytes & 0xffff)
                             << 32) |
                            (0x8000ull << 48);
        for (unsigned i = 0; i < 8; ++i)
            mem->writeByte(prdAddr + i, (prd >> (8 * i)) & 0xff);
    }

    /** Issue a READ_DMA of @p sectors sectors. */
    void
    issueRead(unsigned sectors)
    {
        writePrd(sectors * ide::sectorSize);
        regWrite32(bmBase + ide::regBmPrdAddr, prdAddr);
        regWrite(cmdBase + ide::regSectorCount, sectors & 0xff);
        regWrite(cmdBase + ide::regLbaLow, 0);
        regWrite(cmdBase + ide::regCommand, ide::cmdReadDma);
        regWrite(bmBase + ide::regBmCommand,
                 ide::bmStart | ide::bmWriteToMemory);
    }

    static constexpr Addr cmdBase = 0x2f000000;
    static constexpr Addr ctrlBase = 0x2f000010;
    static constexpr Addr bmBase = 0x2f000020;
    static constexpr Addr prdAddr = 0x80000100;
    static constexpr Addr bufAddr = 0x80100000;

    Simulation sim;
    std::unique_ptr<IdeDisk> disk;
    std::unique_ptr<SimpleMemory> mem;
    RecordingMasterPort cpu{"cpu"};
    bool irqLine = false;
};

} // namespace

TEST_F(DiskFixture, TaskfileRegistersReadBack)
{
    sim.initialize();
    regWrite(cmdBase + ide::regSectorCount, 8);
    regWrite(cmdBase + ide::regLbaLow, 0x11);
    regWrite(cmdBase + ide::regLbaMid, 0x22);
    regWrite(cmdBase + ide::regLbaHigh, 0x33);
    EXPECT_EQ(regRead(cmdBase + ide::regSectorCount), 8u);
    EXPECT_EQ(regRead(cmdBase + ide::regLbaLow), 0x11u);
    EXPECT_EQ(regRead(cmdBase + ide::regLbaMid), 0x22u);
    EXPECT_EQ(regRead(cmdBase + ide::regLbaHigh), 0x33u);
    // Idle drive: DRDY set, BSY clear.
    EXPECT_EQ(regRead(cmdBase + ide::regCommand), ide::statusDrdy);
}

TEST_F(DiskFixture, ReadDmaMovesDataAndInterrupts)
{
    sim.initialize();
    issueRead(8); // 4 KB
    sim.run();

    EXPECT_EQ(disk->commandsCompleted(), 1u);
    EXPECT_EQ(disk->bytesTransferred(), 4096u);
    EXPECT_TRUE(irqLine);
    EXPECT_NE(regRead(bmBase + ide::regBmStatus) & ide::bmStatusIntr,
              0u);
    // Reading the status register clears INTx.
    EXPECT_EQ(regRead(cmdBase + ide::regCommand) & ide::statusBsy,
              0u);
    EXPECT_FALSE(irqLine);
}

TEST_F(DiskFixture, TransferWaitsForBothCommandAndBmStart)
{
    sim.initialize();
    writePrd(512);
    regWrite32(bmBase + ide::regBmPrdAddr, prdAddr);
    regWrite(cmdBase + ide::regSectorCount, 1);
    regWrite(cmdBase + ide::regCommand, ide::cmdReadDma);

    // Command issued but BMDMA not started: the drive sits busy.
    sim.runFor(10_us);
    EXPECT_EQ(disk->commandsCompleted(), 0u);
    EXPECT_NE(regRead(ctrlBase + ide::regAltStatus) &
                  ide::statusBsy,
              0u);

    regWrite(bmBase + ide::regBmCommand,
             ide::bmStart | ide::bmWriteToMemory);
    sim.run();
    EXPECT_EQ(disk->commandsCompleted(), 1u);
}

TEST_F(DiskFixture, MediaLatencyPrecedesTransfer)
{
    sim.initialize();
    Tick start = sim.curTick();
    issueRead(1);
    sim.run();
    // At least the 1 us media access plus the DMA round trips.
    EXPECT_GE(sim.curTick() - start, 1_us);
}

TEST_F(DiskFixture, LargeCommandUsesChunksWithBarriers)
{
    sim.initialize();
    issueRead(64); // 32 KB = 8 chunks of 4 KB
    sim.run();
    EXPECT_EQ(disk->commandsCompleted(), 1u);
    EXPECT_EQ(disk->bytesTransferred(), 64u * 512);
    auto &reg = sim.statsRegistry();
    EXPECT_EQ(reg.counterValue("disk.chunks"), 8u);
}

TEST_F(DiskFixture, PrdByteCountZeroEncodes64K)
{
    // A PRD entry's byte count of zero means 64 KB; a 128-sector
    // command fits exactly.
    sim.initialize();
    writePrd(0);
    regWrite32(bmBase + ide::regBmPrdAddr, prdAddr);
    regWrite(cmdBase + ide::regSectorCount, 128);
    regWrite(cmdBase + ide::regCommand, ide::cmdReadDma);
    regWrite(bmBase + ide::regBmCommand,
             ide::bmStart | ide::bmWriteToMemory);
    sim.run();
    EXPECT_EQ(disk->bytesTransferred(), 128u * 512);
}

TEST_F(DiskFixture, BmStatusInterruptIsWriteOneToClear)
{
    sim.initialize();
    issueRead(1);
    sim.run();
    EXPECT_NE(regRead(bmBase + ide::regBmStatus) & ide::bmStatusIntr,
              0u);
    regWrite(bmBase + ide::regBmStatus, ide::bmStatusIntr);
    EXPECT_EQ(regRead(bmBase + ide::regBmStatus) & ide::bmStatusIntr,
              0u);
}

TEST_F(DiskFixture, BusyFlagDuringCommand)
{
    sim.initialize();
    issueRead(64);
    sim.runFor(2_us); // mid-transfer
    EXPECT_NE(regRead(ctrlBase + ide::regAltStatus) & ide::statusBsy,
              0u);
    sim.run();
    EXPECT_EQ(regRead(ctrlBase + ide::regAltStatus) & ide::statusBsy,
              0u);
}
