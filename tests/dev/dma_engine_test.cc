/**
 * @file
 * Unit tests for the device DMA engine: packetization, the
 * non-posted completion barrier, and retry handling.
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "dev/dma_engine.hh"
#include "sim/sim_object.hh"

using namespace pciesim;
using namespace pciesim::test;

namespace
{

/** Owns the engine and its master port, like a device would. */
class EngineHarness : public SimObject
{
  public:
    class Port : public MasterPort
    {
      public:
        explicit Port(EngineHarness &h)
            : MasterPort("harness.port"), h_(h)
        {}

        bool
        recvTimingResp(PacketPtr pkt) override
        {
            return h_.engine->recvResp(pkt);
        }

        void recvReqRetry() override { h_.engine->recvRetry(); }

      private:
        EngineHarness &h_;
    };

    explicit EngineHarness(Simulation &sim,
                           const DmaEngineParams &params = {})
        : SimObject(sim, "harness"), port(*this)
    {
        engine = std::make_unique<DmaEngine>(*this, port,
                                             "harness.dma", params);
    }

    Port port;
    std::unique_ptr<DmaEngine> engine;
};

} // namespace

TEST(DmaEngineTest, SplitsTransferIntoCacheLinePackets)
{
    Simulation sim;
    EngineHarness h(sim);
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    mem.autoRespond = true;
    h.port.bind(mem);
    sim.initialize();

    bool done = false;
    h.engine->startWrite(0x1000, 4096, [&] { done = true; });
    sim.run();

    EXPECT_TRUE(done);
    ASSERT_EQ(mem.requests.size(), 64u);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_EQ(mem.requests[i]->addr(), 0x1000 + 64 * i);
        EXPECT_EQ(mem.requests[i]->size(), 64u);
    }
    EXPECT_EQ(h.engine->bytesTransferred(), 4096u);
    EXPECT_EQ(h.engine->packetsIssued(), 64u);
    EXPECT_FALSE(h.engine->busy());
}

TEST(DmaEngineTest, CompletionWaitsForAllResponses)
{
    // Non-posted writes (paper Sec. VI-B): the transfer is only
    // complete when every response has returned.
    Simulation sim;
    EngineHarness h(sim);
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    h.port.bind(mem); // no autoRespond: responses held back
    sim.initialize();

    bool done = false;
    h.engine->startWrite(0, 256, [&] { done = true; });
    sim.run();
    ASSERT_EQ(mem.requests.size(), 4u);
    EXPECT_FALSE(done);

    // Complete three of four responses: still not done.
    for (int i = 0; i < 3; ++i) {
        mem.requests[i]->makeResponse();
        EXPECT_TRUE(mem.sendTimingResp(mem.requests[i]));
    }
    EXPECT_FALSE(done);
    mem.requests[3]->makeResponse();
    mem.sendTimingResp(mem.requests[3]);
    EXPECT_TRUE(done);
}

TEST(DmaEngineTest, ShortTailPacket)
{
    Simulation sim;
    EngineHarness h(sim);
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    mem.autoRespond = true;
    h.port.bind(mem);
    sim.initialize();

    bool done = false;
    h.engine->startWrite(0, 100, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    ASSERT_EQ(mem.requests.size(), 2u);
    EXPECT_EQ(mem.requests[0]->size(), 64u);
    EXPECT_EQ(mem.requests[1]->size(), 36u);
}

TEST(DmaEngineTest, HoldsAfterRefusalUntilRetry)
{
    Simulation sim;
    EngineHarness h(sim);
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    mem.autoRespond = true;
    mem.refuseRequests = 1;
    h.port.bind(mem);
    sim.initialize();

    bool done = false;
    h.engine->startWrite(0, 128, [&] { done = true; });
    sim.run();
    EXPECT_FALSE(done);
    EXPECT_EQ(mem.requests.size(), 0u);

    mem.sendRetryReq();
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(mem.requests.size(), 2u);
}

TEST(DmaEngineTest, MaxOutstandingBoundsInFlight)
{
    Simulation sim;
    DmaEngineParams params;
    params.maxOutstanding = 2;
    EngineHarness h(sim, params);
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    h.port.bind(mem);
    sim.initialize();

    h.engine->startWrite(0, 4096, [] {});
    sim.run();
    EXPECT_EQ(mem.requests.size(), 2u); // window of 2

    mem.requests[0]->makeResponse();
    mem.sendTimingResp(mem.requests[0]);
    sim.run();
    EXPECT_EQ(mem.requests.size(), 3u); // one more admitted
}

TEST(DmaEngineTest, ReadDeliversPayloadThroughCallback)
{
    Simulation sim;
    EngineHarness h(sim);
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    mem.onRequest = [&](const PacketPtr &p) {
        if (p->needsResponse()) {
            p->makeResponse();
            p->set<std::uint64_t>(0xfeedfacecafebeefull);
            mem.sendTimingResp(p);
        }
    };
    h.port.bind(mem);
    sim.initialize();

    std::uint64_t seen = 0;
    bool done = false;
    h.engine->startRead(
        0x2000, 8, [&] { done = true; },
        [&](const PacketPtr &p) { seen = p->get<std::uint64_t>(); });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(seen, 0xfeedfacecafebeefull);
}

TEST(DmaEngineTest, WritePayloadRidesTheWire)
{
    Simulation sim;
    EngineHarness h(sim);
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    mem.autoRespond = true;
    h.port.bind(mem);
    sim.initialize();

    std::uint8_t bytes[4] = {0xde, 0xad, 0xbe, 0xef};
    bool done = false;
    h.engine->startWriteData(0x3000, bytes, 4, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    ASSERT_EQ(mem.requests.size(), 1u);
    EXPECT_TRUE(mem.requests[0]->hasData());
    EXPECT_EQ(mem.requests[0]->data()[0], 0xde);
    EXPECT_EQ(mem.requests[0]->data()[3], 0xef);
}

TEST(DmaEngineTest, CompletionTimeoutAbortsDeadTransfer)
{
    Simulation sim;
    DmaEngineParams params;
    params.completionTimeout = microseconds(10);
    EngineHarness h(sim, params);
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    h.port.bind(mem); // accepts requests but never responds
    sim.initialize();

    bool done = false;
    h.engine->startWrite(0, 256, [&] { done = true; });
    sim.run();
    // The endpoint is dead: the watchdog aborts the transfer and
    // the simulation terminates instead of hanging.
    EXPECT_TRUE(done);
    EXPECT_FALSE(h.engine->busy());
    EXPECT_EQ(h.engine->completionTimeouts(), 1u);
    EXPECT_GE(sim.curTick(), microseconds(10));
}

TEST(DmaEngineTest, LateResponsesAfterTimeoutAreDropped)
{
    Simulation sim;
    DmaEngineParams params;
    params.completionTimeout = microseconds(10);
    EngineHarness h(sim, params);
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    h.port.bind(mem);
    sim.initialize();

    h.engine->startWrite(0, 128, [] {});
    sim.run(); // watchdog fires; 2 responses still owed
    ASSERT_EQ(h.engine->completionTimeouts(), 1u);
    ASSERT_EQ(mem.requests.size(), 2u);

    // The owed completions straggle in after the abort: they must
    // be swallowed, not panic as stray responses.
    for (auto &req : mem.requests) {
        req->makeResponse();
        EXPECT_TRUE(mem.sendTimingResp(req));
    }

    // The engine is reusable: a live endpoint completes normally.
    mem.autoRespond = true;
    bool done = false;
    h.engine->startWrite(0x1000, 128, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(h.engine->completionTimeouts(), 1u);
}

TEST(DmaEngineTest, ProgressRearmsTheWatchdog)
{
    // An endpoint that keeps responding - however slowly relative
    // to the transfer, as long as each response lands within one
    // timeout period - must never trip the watchdog.
    Simulation sim;
    DmaEngineParams params;
    params.completionTimeout = microseconds(10);
    params.maxOutstanding = 1;
    EngineHarness h(sim, params);
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    h.port.bind(mem);
    sim.initialize();

    bool done = false;
    h.engine->startWrite(0, 256, [&] { done = true; });
    for (int i = 0; i < 4; ++i) {
        sim.runFor(microseconds(8)); // < timeout since last arm
        ASSERT_FALSE(mem.requests.empty());
        PacketPtr req = mem.requests.back();
        req->makeResponse();
        mem.sendTimingResp(req);
    }
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(h.engine->completionTimeouts(), 0u);
}

TEST(DmaEngineTest, DoubleStartPanics)
{
    setLoggingThrows(true);
    Simulation sim;
    EngineHarness h(sim);
    RecordingSlavePort mem("mem", {AddrRange{0, 0x100000}});
    h.port.bind(mem);
    sim.initialize();

    h.engine->startWrite(0, 4096, [] {});
    EXPECT_THROW(h.engine->startWrite(0, 64, [] {}), PanicError);
    EXPECT_THROW(h.engine->startWrite(0, 0, [] {}), PanicError);
    setLoggingThrows(false);
}
