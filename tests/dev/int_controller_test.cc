/**
 * @file
 * Unit tests for the interrupt controller and the Ethernet wire.
 */

#include <gtest/gtest.h>

#include "dev/ether_wire.hh"
#include "dev/int_controller.hh"

using namespace pciesim;
using namespace pciesim::literals;

TEST(IntControllerTest, DispatchesAfterDeliveryLatency)
{
    Simulation sim;
    IntControllerParams params;
    params.deliveryLatency = 200_ns;
    IntController gic(sim, "gic", params);
    sim.initialize();

    Tick fired_at = 0;
    int count = 0;
    gic.registerHandler(32, [&] {
        fired_at = sim.curTick();
        ++count;
        gic.setLevel(32, false); // handler clears the source
    });

    gic.setLevel(32, true);
    sim.run();
    EXPECT_EQ(count, 1);
    EXPECT_EQ(fired_at, 200_ns);
    EXPECT_FALSE(gic.level(32));
}

TEST(IntControllerTest, LevelTriggeredRedispatchWhileAsserted)
{
    Simulation sim;
    IntController gic(sim, "gic");
    sim.initialize();

    int count = 0;
    gic.registerHandler(33, [&] {
        if (++count == 3)
            gic.setLevel(33, false);
    });
    gic.setLevel(33, true);
    sim.run();
    EXPECT_EQ(count, 3);
    EXPECT_EQ(gic.dispatched(), 3u);
}

TEST(IntControllerTest, NoDispatchWithoutHandler)
{
    Simulation sim;
    IntController gic(sim, "gic");
    sim.initialize();
    gic.setLevel(40, true);
    sim.run();
    EXPECT_EQ(gic.dispatched(), 0u);
    EXPECT_TRUE(gic.level(40));

    // Late handler registration catches the pending level.
    int count = 0;
    gic.registerHandler(40, [&] {
        ++count;
        gic.setLevel(40, false);
    });
    sim.run();
    EXPECT_EQ(count, 1);
}

TEST(IntControllerTest, ReassertAfterDeassertFiresAgain)
{
    Simulation sim;
    IntController gic(sim, "gic");
    sim.initialize();
    int count = 0;
    gic.registerHandler(35, [&] {
        ++count;
        gic.setLevel(35, false);
    });
    gic.setLevel(35, true);
    sim.run();
    gic.setLevel(35, true);
    sim.run();
    EXPECT_EQ(count, 2);
}

namespace
{

class FrameCollector : public EtherSink
{
  public:
    bool
    recvFrame(const EtherFrame &frame) override
    {
        if (reject)
            return false;
        frames.push_back(frame);
        return true;
    }

    std::vector<EtherFrame> frames;
    bool reject = false;
};

} // namespace

TEST(EtherWireTest, DeliversBetweenEndsAfterSerialization)
{
    Simulation sim;
    EtherWireParams params;
    params.rateGbps = 1.0; // 8 ns per byte
    params.latency = 500_ns;
    EtherWire wire(sim, "wire", params);
    FrameCollector a, b;
    wire.attach(0, a);
    wire.attach(1, b);
    sim.initialize();

    EtherFrame f;
    f.size = 1500;
    EXPECT_TRUE(wire.transmit(0, f));
    sim.run();
    ASSERT_EQ(b.frames.size(), 1u);
    EXPECT_TRUE(a.frames.empty());
    // 1500 B * 8 ns + 500 ns latency.
    EXPECT_EQ(sim.curTick(), nanoseconds(1500 * 8 + 500));
}

TEST(EtherWireTest, BusyWhileSerializing)
{
    Simulation sim;
    EtherWire wire(sim, "wire");
    FrameCollector a, b;
    wire.attach(0, a);
    wire.attach(1, b);
    sim.initialize();

    EtherFrame f;
    f.size = 1500;
    EXPECT_TRUE(wire.transmit(0, f));
    EXPECT_FALSE(wire.transmit(0, f)); // direction busy
    EXPECT_TRUE(wire.transmit(1, f));  // other direction free
    sim.run();
    EXPECT_EQ(a.frames.size(), 1u);
    EXPECT_EQ(b.frames.size(), 1u);
}

TEST(EtherWireTest, LoopbackWithSingleSink)
{
    Simulation sim;
    EtherWire wire(sim, "wire");
    FrameCollector a;
    wire.attach(0, a);
    sim.initialize();

    EtherFrame f;
    f.size = 64;
    wire.transmit(0, f);
    sim.run();
    ASSERT_EQ(a.frames.size(), 1u); // reflected back
    EXPECT_EQ(wire.framesDelivered(), 1u);
}

TEST(EtherWireTest, RejectedFramesCountAsDropped)
{
    Simulation sim;
    EtherWire wire(sim, "wire");
    FrameCollector a, b;
    b.reject = true;
    wire.attach(0, a);
    wire.attach(1, b);
    sim.initialize();

    EtherFrame f;
    f.size = 64;
    wire.transmit(0, f);
    sim.run();
    EXPECT_EQ(wire.framesDropped(), 1u);
    EXPECT_EQ(wire.framesDelivered(), 0u);
}
