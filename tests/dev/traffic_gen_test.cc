/**
 * @file
 * Unit tests for the synthetic DMA traffic generator.
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "dev/traffic_gen.hh"
#include "mem/simple_memory.hh"
#include "pci/config_regs.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

namespace
{

struct TgenFixture : ::testing::Test
{
    TgenFixture()
    {
        gen = std::make_unique<TrafficGen>(sim, "tgen");
        SimpleMemoryParams mp;
        mp.range = {0x80000000, 0x90000000};
        mem = std::make_unique<SimpleMemory>(sim, "mem", mp);
        cpu.bind(gen->pioPort());
        gen->dmaPort().bind(mem->port());
        gen->setIntxSink([this](bool v) { irq = v; });
        gen->configWrite(cfg::bar0, 4, mmio);
        gen->configWrite(cfg::command, 2,
                         cfg::cmdMemEnable | cfg::cmdBusMaster);
    }

    void
    reg32(Addr offset, std::uint32_t v)
    {
        PacketPtr p = Packet::makeRequest(MemCmd::WriteReq,
                                          mmio + offset, 4);
        p->set<std::uint32_t>(v);
        ASSERT_TRUE(cpu.sendTimingReq(p));
    }

    std::uint32_t
    read32(Addr offset)
    {
        PacketPtr p = Packet::makeRequest(MemCmd::ReadReq,
                                          mmio + offset, 4);
        EXPECT_TRUE(cpu.sendTimingReq(p));
        while ((cpu.responses.empty() || cpu.responses.back() != p) &&
               sim.eventq().step()) {
        }
        return p->get<std::uint32_t>();
    }

    static constexpr Addr mmio = 0x40000000;

    Simulation sim;
    std::unique_ptr<TrafficGen> gen;
    std::unique_ptr<SimpleMemory> mem;
    RecordingMasterPort cpu{"cpu"};
    bool irq = false;
};

} // namespace

TEST_F(TgenFixture, RegistersReadBack)
{
    sim.initialize();
    reg32(tgen::regAddrLo, 0x80001000);
    reg32(tgen::regLength, 8192);
    reg32(tgen::regCount, 7);
    reg32(tgen::regMode, 1);
    EXPECT_EQ(read32(tgen::regAddrLo), 0x80001000u);
    EXPECT_EQ(read32(tgen::regLength), 8192u);
    EXPECT_EQ(read32(tgen::regCount), 7u);
    EXPECT_EQ(read32(tgen::regMode), 1u);
    EXPECT_EQ(read32(tgen::regDone), 0u);
}

TEST_F(TgenFixture, WriteBurstsCompleteAndInterrupt)
{
    sim.initialize();
    reg32(tgen::regAddrLo, 0x80002000);
    reg32(tgen::regLength, 4096);
    reg32(tgen::regCount, 3);
    reg32(tgen::regMode, 0);
    reg32(tgen::regCtrl, tgen::ctrlStart);
    sim.run();

    EXPECT_EQ(gen->burstsCompleted(), 3u);
    EXPECT_EQ(gen->bytesMoved(), 3u * 4096);
    EXPECT_FALSE(gen->running());
    EXPECT_TRUE(irq);
    EXPECT_GT(gen->achievedGbps(), 0.0);
    // Reading DONE deasserts the interrupt.
    EXPECT_EQ(read32(tgen::regDone), 3u);
    EXPECT_FALSE(irq);
}

TEST_F(TgenFixture, ReadModeIssuesReads)
{
    sim.initialize();
    reg32(tgen::regAddrLo, 0x80002000);
    reg32(tgen::regLength, 256);
    reg32(tgen::regCount, 2);
    reg32(tgen::regMode, 1);
    reg32(tgen::regCtrl, tgen::ctrlStart);
    sim.run();
    EXPECT_EQ(gen->burstsCompleted(), 2u);
    auto &reg = sim.statsRegistry();
    EXPECT_GE(reg.counterValue("mem.reads"), 8u); // 2 x 4 packets
}

TEST_F(TgenFixture, StopEndsAnUnboundedRun)
{
    sim.initialize();
    reg32(tgen::regAddrLo, 0x80002000);
    reg32(tgen::regLength, 4096);
    reg32(tgen::regCount, 0); // run until stopped
    reg32(tgen::regCtrl, tgen::ctrlStart);
    sim.runFor(20_us);
    EXPECT_TRUE(gen->running());
    std::uint64_t so_far = gen->burstsCompleted();
    EXPECT_GT(so_far, 0u);

    reg32(tgen::regCtrl, tgen::ctrlStop);
    sim.run();
    EXPECT_FALSE(gen->running());
    EXPECT_TRUE(irq);
    EXPECT_GE(gen->burstsCompleted(), so_far);
}

TEST_F(TgenFixture, InterBurstGapPacesTraffic)
{
    // Rebuild with a gap and compare against the gapless run time.
    auto elapsed = [](Tick gap) {
        Simulation sim;
        TrafficGenParams params;
        params.interBurstGap = gap;
        TrafficGen gen(sim, "tgen", params);
        SimpleMemoryParams mp;
        mp.range = {0x80000000, 0x90000000};
        SimpleMemory mem(sim, "mem", mp);
        RecordingMasterPort cpu("cpu");
        cpu.bind(gen.pioPort());
        gen.dmaPort().bind(mem.port());
        gen.configWrite(cfg::bar0, 4, 0x40000000);
        gen.configWrite(cfg::command, 2,
                        cfg::cmdMemEnable | cfg::cmdBusMaster);
        sim.initialize();
        auto w = [&](Addr off, std::uint32_t v) {
            PacketPtr p = Packet::makeRequest(
                MemCmd::WriteReq, 0x40000000 + off, 4);
            p->set<std::uint32_t>(v);
            EXPECT_TRUE(cpu.sendTimingReq(p));
        };
        w(tgen::regAddrLo, 0x80002000);
        w(tgen::regLength, 1024);
        w(tgen::regCount, 4);
        w(tgen::regCtrl, tgen::ctrlStart);
        sim.run();
        EXPECT_EQ(gen.burstsCompleted(), 4u);
        return sim.curTick();
    };
    EXPECT_GT(elapsed(10_us), elapsed(0));
}

TEST_F(TgenFixture, StartWithoutBusMasterPanics)
{
    setLoggingThrows(true);
    sim.initialize();
    gen->configWrite(cfg::command, 2, cfg::cmdMemEnable); // no master
    reg32(tgen::regAddrLo, 0x80002000);
    reg32(tgen::regLength, 64);
    reg32(tgen::regCount, 1);
    EXPECT_THROW(reg32(tgen::regCtrl, tgen::ctrlStart), PanicError);
    setLoggingThrows(false);
}
