/**
 * @file
 * Unit tests for the PCI Host: registry, ECAM decoding, all-ones
 * completion for absent devices (paper Sec. III).
 */

#include <gtest/gtest.h>

#include "pci/config_regs.hh"
#include "pci/pci_host.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace pciesim;

namespace
{

class StubFunction : public PciFunction
{
  public:
    explicit StubFunction(const std::string &name) : PciFunction(name)
    {
        config_.init16(cfg::vendorId, 0x8086);
        config_.init16(cfg::deviceId, 0x1234);
    }
};

} // namespace

TEST(PciHostTest, RegisterAndLookup)
{
    Simulation sim;
    PciHost host(sim, "host");
    StubFunction fn("fn");
    host.registerFunction(fn, Bdf{2, 3, 0});
    EXPECT_EQ(host.lookup(Bdf{2, 3, 0}), &fn);
    EXPECT_EQ(host.lookup(Bdf{2, 4, 0}), nullptr);
    EXPECT_EQ(fn.bdf(), (Bdf{2, 3, 0}));
}

TEST(PciHostTest, ConfigAccessReachesFunction)
{
    Simulation sim;
    PciHost host(sim, "host");
    StubFunction fn("fn");
    host.registerFunction(fn, Bdf{0, 1, 0});
    EXPECT_EQ(host.configRead(Bdf{0, 1, 0}, cfg::vendorId, 2),
              0x8086u);
}

TEST(PciHostTest, AbsentDeviceReadsAllOnes)
{
    // "a configuration response packet with its data field set to
    // 1's represents an attempted access to a non-existent device"
    // (paper Sec. III).
    Simulation sim;
    PciHost host(sim, "host");
    EXPECT_EQ(host.configRead(Bdf{9, 9, 0}, cfg::vendorId, 2),
              0xffffu);
    EXPECT_EQ(host.configRead(Bdf{9, 9, 0}, 0, 4), 0xffffffffu);
    EXPECT_EQ(host.configRead(Bdf{9, 9, 0}, 0, 1), 0xffu);
    // Writes to absent devices vanish without error.
    host.configWrite(Bdf{9, 9, 0}, 0, 4, 0xdead);
}

TEST(PciHostTest, DuplicateRegistrationIsFatal)
{
    setLoggingThrows(true);
    Simulation sim;
    PciHost host(sim, "host");
    StubFunction a("a"), b("b");
    host.registerFunction(a, Bdf{0, 0, 0});
    EXPECT_THROW(host.registerFunction(b, Bdf{0, 0, 0}), FatalError);
    setLoggingThrows(false);
}

struct EcamCase
{
    Bdf bdf;
    unsigned offset;
};

class EcamRoundTrip : public ::testing::TestWithParam<EcamCase>
{};

TEST_P(EcamRoundTrip, EncodeDecode)
{
    const auto &c = GetParam();
    Addr a = PciHost::ecamAddr(c.bdf, c.offset);
    EXPECT_TRUE(platform::confRange.contains(a));
    Bdf bdf;
    unsigned offset = 0;
    ASSERT_TRUE(PciHost::decodeEcam(a, bdf, offset));
    EXPECT_EQ(bdf, c.bdf);
    EXPECT_EQ(offset, c.offset);
}

INSTANTIATE_TEST_SUITE_P(
    Addresses, EcamRoundTrip,
    ::testing::Values(
        EcamCase{{0, 0, 0}, 0},
        EcamCase{{0, 31, 7}, 0xffc},
        EcamCase{{3, 0, 0}, 0x34},
        EcamCase{{255, 0, 0}, 0x100},
        EcamCase{{1, 2, 3}, 0xd8}));

TEST(PciHostTest, DecodeRejectsOutsideWindow)
{
    Bdf bdf;
    unsigned offset;
    EXPECT_FALSE(PciHost::decodeEcam(0x20000000, bdf, offset));
    EXPECT_FALSE(PciHost::decodeEcam(0x40000000, bdf, offset));
}

TEST(PciHostTest, AddrBasedAccessRoundTrips)
{
    Simulation sim;
    PciHost host(sim, "host");
    StubFunction fn("fn");
    host.registerFunction(fn, Bdf{1, 0, 0});
    Addr a = PciHost::ecamAddr(Bdf{1, 0, 0}, cfg::deviceId);
    EXPECT_EQ(host.configReadAddr(a, 2), 0x1234u);

    // Write through an address: the stub's header is read-only, so
    // verify with a writable register instead.
    fn.config().mask8(cfg::interruptLine, 0xff);
    host.configWriteAddr(PciHost::ecamAddr(Bdf{1, 0, 0},
                                           cfg::interruptLine),
                         1, 0x42);
    EXPECT_EQ(fn.config().raw8(cfg::interruptLine), 0x42);
}
