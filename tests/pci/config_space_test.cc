/**
 * @file
 * Unit tests for the configuration-space backing store.
 */

#include <gtest/gtest.h>

#include "pci/config_space.hh"
#include "sim/logging.hh"

using namespace pciesim;

TEST(ConfigSpaceTest, StartsAllZero)
{
    ConfigSpace cs;
    EXPECT_EQ(cs.read(0, 4), 0u);
    EXPECT_EQ(cs.read(cfg::pcieConfigSize - 4, 4), 0u);
}

TEST(ConfigSpaceTest, InitAndReadBackAllSizes)
{
    ConfigSpace cs;
    cs.init32(0x10, 0xaabbccdd);
    EXPECT_EQ(cs.read(0x10, 4), 0xaabbccddu);
    EXPECT_EQ(cs.read(0x10, 2), 0xccddu);
    EXPECT_EQ(cs.read(0x12, 2), 0xaabbu);
    EXPECT_EQ(cs.read(0x10, 1), 0xddu);
    EXPECT_EQ(cs.read(0x13, 1), 0xaau);
}

TEST(ConfigSpaceTest, WritesHonourWriteMask)
{
    ConfigSpace cs;
    cs.init16(0x04, 0x1234);
    // Only the low byte is writable.
    cs.mask16(0x04, 0x00ff);
    cs.write(0x04, 2, 0xffff);
    EXPECT_EQ(cs.read(0x04, 2), 0x12ffu);
}

TEST(ConfigSpaceTest, DefaultMaskIsReadOnly)
{
    ConfigSpace cs;
    cs.init32(0x00, 0x10d38086);
    cs.write(0x00, 4, 0xffffffff);
    EXPECT_EQ(cs.read(0x00, 4), 0x10d38086u);
}

TEST(ConfigSpaceTest, Init24LeavesTopByte)
{
    // The class code is a 24-bit field sharing a dword with the
    // revision ID; init24 must not clobber the fourth byte.
    ConfigSpace cs;
    cs.init8(0x0b, 0x77);
    cs.init24(0x08, 0x020000);
    EXPECT_EQ(cs.raw8(0x08), 0x00);
    EXPECT_EQ(cs.raw8(0x09), 0x00);
    EXPECT_EQ(cs.raw8(0x0a), 0x02);
    EXPECT_EQ(cs.raw8(0x0b), 0x77);
}

TEST(ConfigSpaceTest, SubByteMaskWithinWord)
{
    ConfigSpace cs;
    cs.mask32(0x10, 0xffff0000);
    cs.write(0x10, 4, 0x12345678);
    EXPECT_EQ(cs.read(0x10, 4), 0x12340000u);
}

class ConfigSpaceAccessSize
    : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ConfigSpaceAccessSize, AlignedAccessWorks)
{
    unsigned size = GetParam();
    ConfigSpace cs;
    cs.mask32(0x40, 0xffffffff);
    cs.write(0x40, size, 0xffffffff);
    std::uint32_t expect =
        size == 4 ? 0xffffffffu : (1u << (8 * size)) - 1;
    EXPECT_EQ(cs.read(0x40, size), expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConfigSpaceAccessSize,
                         ::testing::Values(1u, 2u, 4u));

TEST(ConfigSpaceTest, BadAccessesPanic)
{
    setLoggingThrows(true);
    ConfigSpace cs;
    EXPECT_THROW(cs.read(0x01, 2), PanicError);  // unaligned
    EXPECT_THROW(cs.read(0x00, 3), PanicError);  // bad size
    EXPECT_THROW(cs.read(4096, 4), PanicError);  // out of range
    EXPECT_THROW(cs.write(4094, 4, 0), PanicError);
    setLoggingThrows(false);
}
