/**
 * @file
 * Unit tests for the AER extended capability register block (spec
 * sec. 7.8.4, DESIGN.md §12): status latching, W1C semantics,
 * mask/severity gating, the first-error header log, and the root
 * error status/command block.
 */

#include <gtest/gtest.h>

#include "pci/aer.hh"
#include "pci/config_regs.hh"

using namespace pciesim;

namespace
{

struct AerFixture : ::testing::Test
{
    AerFixture()
    {
        aer.install(space, /*root_port=*/false);
        rootAer.install(rootSpace, /*root_port=*/true);
    }

    std::uint32_t
    raw(const ConfigSpace &cs, unsigned rel) const
    {
        return cs.raw32(cfg::extendedCapBase + rel);
    }

    ConfigSpace space;
    ConfigSpace rootSpace;
    AerCapability aer;
    AerCapability rootAer;
    std::array<std::uint32_t, 4> hdr{{0x4a000001, 0x000000ff,
                                      0x12345678, 0x9abcdef0}};
};

} // namespace

TEST_F(AerFixture, HeaderAdvertisesAerCapability)
{
    std::uint32_t h = raw(space, cfg::aerCapHeader);
    EXPECT_EQ(h & 0xffff, cfg::extCapIdAer);
    EXPECT_EQ((h >> 16) & 0xf, 1u); // version
}

TEST_F(AerFixture, CorrectableLatchAndMaskGate)
{
    EXPECT_TRUE(aer.recordCorrectable(cfg::aerCorBadTlp));
    EXPECT_EQ(aer.corrStatus(), cfg::aerCorBadTlp);

    // Masked: still latched, but not reported upstream.
    aer.handleConfigWrite(cfg::extendedCapBase + cfg::aerCorrMask, 4,
                          cfg::aerCorReplayRollover);
    EXPECT_FALSE(aer.recordCorrectable(cfg::aerCorReplayRollover));
    EXPECT_EQ(aer.corrStatus(),
              cfg::aerCorBadTlp | cfg::aerCorReplayRollover);
}

TEST_F(AerFixture, UncorrectableSeverityFollowsSeverityRegister)
{
    bool fatal = true;
    EXPECT_TRUE(aer.recordUncorrectable(cfg::aerUncCompletionTimeout,
                                        hdr, fatal));
    // Default severity: only surprise-down is fatal.
    EXPECT_FALSE(fatal);
    EXPECT_TRUE(aer.recordUncorrectable(cfg::aerUncSurpriseDown, hdr,
                                        fatal));
    EXPECT_TRUE(fatal);
    EXPECT_EQ(aer.uncorrStatus(),
              cfg::aerUncCompletionTimeout | cfg::aerUncSurpriseDown);
}

TEST_F(AerFixture, HeaderLogCapturesFirstErrorOnly)
{
    bool fatal = false;
    aer.recordUncorrectable(cfg::aerUncDlpError, hdr, fatal);
    for (unsigned dw = 0; dw < 4; ++dw)
        EXPECT_EQ(aer.headerLog(dw), hdr[dw]);
    // First-error pointer names bit 4 (DLP error).
    EXPECT_EQ(raw(space, cfg::aerCapControl) & 0x1f, 4u);

    // A second error must not overwrite the log.
    std::array<std::uint32_t, 4> other{{1, 2, 3, 4}};
    aer.recordUncorrectable(cfg::aerUncSurpriseDown, other, fatal);
    for (unsigned dw = 0; dw < 4; ++dw)
        EXPECT_EQ(aer.headerLog(dw), hdr[dw]);
}

TEST_F(AerFixture, StatusRegistersAreW1C)
{
    bool fatal = false;
    aer.recordUncorrectable(cfg::aerUncDlpError, hdr, fatal);
    aer.recordCorrectable(cfg::aerCorBadDllp);

    // Writing 1s to other bits leaves the latched bit alone.
    aer.handleConfigWrite(cfg::extendedCapBase + cfg::aerUncorrStatus,
                          4, ~cfg::aerUncDlpError);
    EXPECT_EQ(aer.uncorrStatus(), cfg::aerUncDlpError);
    // Writing the latched bit clears it.
    aer.handleConfigWrite(cfg::extendedCapBase + cfg::aerUncorrStatus,
                          4, cfg::aerUncDlpError);
    EXPECT_EQ(aer.uncorrStatus(), 0u);
    aer.handleConfigWrite(cfg::extendedCapBase + cfg::aerCorrStatus,
                          4, cfg::aerCorBadDllp);
    EXPECT_EQ(aer.corrStatus(), 0u);
}

TEST_F(AerFixture, WritesOutsideTheWindowAreNotClaimed)
{
    EXPECT_FALSE(aer.handleConfigWrite(cfg::command, 2, 0xffff));
    EXPECT_FALSE(aer.handleConfigWrite(
        cfg::extendedCapBase + cfg::aerCapSize, 4, 0xffffffffU));
}

TEST_F(AerFixture, RootErrorStatusLatchesSeverityAndSource)
{
    // Non-root functions have no root block to latch into.
    EXPECT_EQ(rootAer.rootErrStatus(), 0u);

    EXPECT_TRUE(rootAer.recordRootError(ErrSeverity::Fatal, 0x0300));
    std::uint32_t st = rootAer.rootErrStatus();
    EXPECT_NE(st & cfg::aerRootFatalReceived, 0u);
    EXPECT_NE(st & cfg::aerRootUncorReceived, 0u);
    EXPECT_EQ(st & cfg::aerRootNonFatalReceived, 0u);
    // Uncorrectable source id lives in the upper half-word.
    EXPECT_EQ(raw(rootSpace, cfg::aerErrSourceId) >> 16, 0x0300u);

    EXPECT_TRUE(rootAer.recordRootError(ErrSeverity::Correctable,
                                        0x0100));
    EXPECT_NE(rootAer.rootErrStatus() & cfg::aerRootCorReceived, 0u);
    EXPECT_EQ(raw(rootSpace, cfg::aerErrSourceId) & 0xffff, 0x0100u);
}

TEST_F(AerFixture, RootErrCommandGatesTheInterrupt)
{
    // Disable the fatal interrupt enable; the message still latches
    // but no interrupt is requested.
    rootAer.handleConfigWrite(
        cfg::extendedCapBase + cfg::aerRootErrCommand, 4,
        cfg::aerRootCmdCorEnable);
    EXPECT_FALSE(rootAer.recordRootError(ErrSeverity::Fatal, 0x300));
    EXPECT_NE(rootAer.rootErrStatus() & cfg::aerRootFatalReceived,
              0u);
    EXPECT_TRUE(
        rootAer.recordRootError(ErrSeverity::Correctable, 0x100));
}

TEST_F(AerFixture, ClearStatusRestoresPowerOnState)
{
    bool fatal = false;
    aer.recordUncorrectable(cfg::aerUncSurpriseDown, hdr, fatal);
    aer.recordCorrectable(cfg::aerCorReceiverError);
    aer.clearStatus();
    EXPECT_EQ(aer.uncorrStatus(), 0u);
    EXPECT_EQ(aer.corrStatus(), 0u);
    for (unsigned dw = 0; dw < 4; ++dw)
        EXPECT_EQ(aer.headerLog(dw), 0u);

    rootAer.recordRootError(ErrSeverity::Fatal, 0x300);
    rootAer.clearStatus();
    EXPECT_EQ(rootAer.rootErrStatus(), 0u);
}
