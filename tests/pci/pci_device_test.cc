/**
 * @file
 * Unit tests for the endpoint device base class: BAR sizing
 * semantics, command-register gating, PIO dispatch, and INTx.
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "pci/config_regs.hh"
#include "pci/pci_device.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

namespace
{

/** A device with a tiny register file: reg[offset] = offset + 1. */
class ScratchDevice : public PciDevice
{
  public:
    ScratchDevice(Simulation &sim, const PciDeviceParams &params)
        : PciDevice(sim, "dev", params)
    {}

    using PciDevice::lowerIntx;
    using PciDevice::raiseIntx;

    std::uint64_t
    readReg(unsigned bar, Addr offset, unsigned) override
    {
        lastBar = bar;
        return offset + 1;
    }

    void
    writeReg(unsigned bar, Addr offset, unsigned,
             std::uint64_t value) override
    {
        lastBar = bar;
        writes.push_back({offset, value});
    }

    unsigned lastBar = 99;
    std::vector<std::pair<Addr, std::uint64_t>> writes;
};

PciDeviceParams
twoBarParams()
{
    PciDeviceParams p;
    p.vendorId = 0x8086;
    p.deviceId = 0x10d3;
    p.classCode = 0x020000;
    p.bars = {BarSpec{0x1000, false}, BarSpec{32, true}};
    p.pioLatency = nanoseconds(30);
    return p;
}

} // namespace

TEST(PciDeviceTest, HeaderFieldsFromParams)
{
    Simulation sim;
    ScratchDevice dev(sim, twoBarParams());
    EXPECT_EQ(dev.configRead(cfg::vendorId, 2), 0x8086u);
    EXPECT_EQ(dev.configRead(cfg::deviceId, 2), 0x10d3u);
    EXPECT_EQ(dev.configRead(cfg::headerType, 1),
              cfg::headerTypeEndpoint);
    EXPECT_EQ(dev.configRead(cfg::interruptPin, 1), 1u);
}

TEST(PciDeviceTest, BarSizingProtocol)
{
    Simulation sim;
    ScratchDevice dev(sim, twoBarParams());

    // Memory BAR: write all-ones, read back the size mask.
    dev.configWrite(cfg::bar0, 4, 0xffffffff);
    EXPECT_EQ(dev.configRead(cfg::bar0, 4), 0xfffff000u);

    // I/O BAR: the I/O space flag is set in bit 0.
    dev.configWrite(cfg::bar1, 4, 0xffffffff);
    EXPECT_EQ(dev.configRead(cfg::bar1, 4), 0xffffffe0u | 0x1u);

    // Unimplemented BARs read as zero.
    dev.configWrite(cfg::bar2, 4, 0xffffffff);
    EXPECT_EQ(dev.configRead(cfg::bar2, 4), 0u);
}

TEST(PciDeviceTest, BarAssignmentAndDecode)
{
    Simulation sim;
    ScratchDevice dev(sim, twoBarParams());
    dev.configWrite(cfg::bar0, 4, 0x40000000);
    dev.configWrite(cfg::bar1, 4, 0x2f000000 | 1);
    EXPECT_EQ(dev.barAddr(0), 0x40000000u);
    EXPECT_EQ(dev.barAddr(1), 0x2f000000u);

    // Ranges are gated by the command register.
    EXPECT_TRUE(dev.barRange(0).empty());
    dev.configWrite(cfg::command, 2,
                    cfg::cmdMemEnable | cfg::cmdIoEnable);
    EXPECT_EQ(dev.barRange(0),
              (AddrRange{0x40000000, 0x40001000}));
    EXPECT_EQ(dev.barRange(1),
              (AddrRange{0x2f000000, 0x2f000020}));
    EXPECT_TRUE(dev.memEnabled());
    EXPECT_TRUE(dev.ioEnabled());
    EXPECT_FALSE(dev.busMaster());
}

TEST(PciDeviceTest, PioReadReachesRegisterFile)
{
    Simulation sim;
    ScratchDevice dev(sim, twoBarParams());
    RecordingMasterPort cpu("cpu");
    RecordingMasterPort dma_peer("dmaPeer");
    RecordingSlavePort dma_sink("dmaSink");
    cpu.bind(dev.pioPort());
    dev.dmaPort().bind(dma_sink);

    dev.configWrite(cfg::bar0, 4, 0x40000000);
    dev.configWrite(cfg::command, 2, cfg::cmdMemEnable);
    sim.initialize();

    PacketPtr p = Packet::makeRequest(MemCmd::ReadReq, 0x40000010, 4);
    EXPECT_TRUE(cpu.sendTimingReq(p));
    sim.run();
    ASSERT_EQ(cpu.responses.size(), 1u);
    EXPECT_EQ(cpu.responses[0]->get<std::uint32_t>(), 0x11u);
    EXPECT_EQ(dev.lastBar, 0u);
    EXPECT_EQ(sim.curTick(), nanoseconds(30)); // pioLatency
}

TEST(PciDeviceTest, PioWriteCarriesValue)
{
    Simulation sim;
    ScratchDevice dev(sim, twoBarParams());
    RecordingMasterPort cpu("cpu");
    RecordingSlavePort dma_sink("dmaSink");
    cpu.bind(dev.pioPort());
    dev.dmaPort().bind(dma_sink);
    dev.configWrite(cfg::bar1, 4, 0x2f000000 | 1);
    dev.configWrite(cfg::command, 2, cfg::cmdIoEnable);
    sim.initialize();

    PacketPtr p = Packet::makeRequest(MemCmd::WriteReq, 0x2f000004, 2);
    p->set<std::uint16_t>(0xbeef);
    cpu.sendTimingReq(p);
    sim.run();
    ASSERT_EQ(dev.writes.size(), 1u);
    EXPECT_EQ(dev.writes[0].first, 0x4u);
    EXPECT_EQ(dev.writes[0].second, 0xbeefu);
    EXPECT_EQ(dev.lastBar, 1u);
    ASSERT_EQ(cpu.responses.size(), 1u);
    EXPECT_EQ(cpu.responses[0]->cmd(), MemCmd::WriteResp);
}

TEST(PciDeviceTest, IntxFollowsSinkAndDisableBit)
{
    Simulation sim;
    ScratchDevice dev(sim, twoBarParams());
    bool line = false;
    dev.setIntxSink([&](bool v) { line = v; });

    dev.raiseIntx();
    EXPECT_TRUE(line);
    EXPECT_NE(dev.configRead(cfg::status, 2) & cfg::statusIntx, 0u);
    dev.lowerIntx();
    EXPECT_FALSE(line);
    EXPECT_EQ(dev.configRead(cfg::status, 2) & cfg::statusIntx, 0u);

    // With INTx disabled in the command register, raise is a no-op.
    dev.configWrite(cfg::command, 2, cfg::cmdIntxDisable);
    dev.raiseIntx();
    EXPECT_FALSE(line);
}

TEST(PciDeviceTest, InterruptLineIsSoftwareWritable)
{
    Simulation sim;
    ScratchDevice dev(sim, twoBarParams());
    dev.configWrite(cfg::interruptLine, 1, 42);
    EXPECT_EQ(dev.configRead(cfg::interruptLine, 1), 42u);
}

TEST(PciDeviceTest, BadBarSizeIsFatal)
{
    setLoggingThrows(true);
    Simulation sim;
    PciDeviceParams p;
    p.bars = {BarSpec{48, false}}; // not a power of two
    EXPECT_THROW(ScratchDevice dev(sim, p), FatalError);
    PciDeviceParams p2;
    p2.bars = {BarSpec{8, false}}; // below the 16 B minimum
    EXPECT_THROW(ScratchDevice dev(sim, p2), FatalError);
    setLoggingThrows(false);
}
