/**
 * @file
 * Unit tests for capability structures (paper Fig. 4 / Fig. 5):
 * chain linking, the disabled PM/MSI/MSI-X encodings the paper's
 * device template uses, and the PCI-Express capability registers.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "pci/capability.hh"
#include "pci/config_regs.hh"

using namespace pciesim;

TEST(CapabilityChain, EmptyChainHasNoCapList)
{
    ConfigSpace cs;
    CapabilityChain chain(cs);
    chain.finalize();
    EXPECT_EQ(cs.raw8(cfg::capPtr), 0);
    EXPECT_EQ(cs.raw16(cfg::status) & cfg::statusCapList, 0);
    EXPECT_EQ(CapabilityWalker::count(cs), 0u);
}

TEST(CapabilityChain, LinksInCallOrder)
{
    // The paper's NIC chain: PM (0xc8) -> MSI (0xd0) -> PCIe (0xe0)
    // -> MSI-X (0xa0), with Cap Ptr pointing at PM (Sec. IV).
    ConfigSpace cs;
    CapabilityChain chain(cs);
    chain.addPowerManagement(0xc8);
    chain.addMsi(0xd0);
    chain.addPcie(0xe0, PcieCapParams{});
    chain.addMsix(0xa0, 5);
    chain.finalize();

    EXPECT_EQ(cs.raw8(cfg::capPtr), 0xc8);
    EXPECT_EQ(cs.raw8(0xc8), cfg::capIdPm);
    EXPECT_EQ(cs.raw8(0xc8 + 1), 0xd0);
    EXPECT_EQ(cs.raw8(0xd0), cfg::capIdMsi);
    EXPECT_EQ(cs.raw8(0xd0 + 1), 0xe0);
    EXPECT_EQ(cs.raw8(0xe0), cfg::capIdPcie);
    EXPECT_EQ(cs.raw8(0xe0 + 1), 0xa0);
    EXPECT_EQ(cs.raw8(0xa0), cfg::capIdMsix);
    EXPECT_EQ(cs.raw8(0xa0 + 1), 0x00); // end of chain
    EXPECT_NE(cs.raw16(cfg::status) & cfg::statusCapList, 0);
    EXPECT_EQ(CapabilityWalker::count(cs), 4u);
}

TEST(CapabilityWalker, FindsById)
{
    ConfigSpace cs;
    CapabilityChain chain(cs);
    chain.addPowerManagement(0x40);
    chain.addPcie(0x50, PcieCapParams{});
    chain.finalize();

    EXPECT_EQ(CapabilityWalker::find(cs, cfg::capIdPm), 0x40u);
    EXPECT_EQ(CapabilityWalker::find(cs, cfg::capIdPcie), 0x50u);
    EXPECT_EQ(CapabilityWalker::find(cs, cfg::capIdMsi), 0u);
}

TEST(Capability, MsiEnableIsReadOnlyZero)
{
    // The paper disables MSI so the driver falls back to INTx.
    ConfigSpace cs;
    CapabilityChain chain(cs);
    unsigned msi = chain.addMsi(0xd0);
    chain.finalize();

    cs.write(msi + 2, 2, 0x0001); // attempt to set MSI Enable
    EXPECT_EQ(cs.read(msi + 2, 2) & 0x0001, 0u);
    // The address/data registers stay writable scratch.
    cs.write(msi + 4, 4, 0xfee00000);
    EXPECT_EQ(cs.read(msi + 4, 4), 0xfee00000u);
}

TEST(Capability, MsixEnableIsReadOnlyZero)
{
    ConfigSpace cs;
    CapabilityChain chain(cs);
    unsigned msix = chain.addMsix(0xa0, 5);
    chain.finalize();

    EXPECT_EQ(cs.read(msix + 2, 2) & 0x7ff, 4u); // table size N-1
    cs.write(msix + 2, 2, 0x8000);
    EXPECT_EQ(cs.read(msix + 2, 2) & 0x8000, 0u);
}

TEST(Capability, PowerManagementStuckInD0)
{
    ConfigSpace cs;
    CapabilityChain chain(cs);
    unsigned pm = chain.addPowerManagement(0xc8);
    chain.finalize();

    cs.write(pm + 4, 2, 0x0003); // try to enter D3hot
    EXPECT_EQ(cs.read(pm + 4, 2) & 0x3, 0u);
}

struct PcieCapCase
{
    cfg::PciePortType type;
    unsigned width;
    unsigned gen;
    bool slot;
    bool root;
};

class PcieCapability : public ::testing::TestWithParam<PcieCapCase>
{};

TEST_P(PcieCapability, EncodesFig5Registers)
{
    const auto &c = GetParam();
    ConfigSpace cs;
    CapabilityChain chain(cs);
    PcieCapParams params;
    params.portType = c.type;
    params.linkWidth = c.width;
    params.linkGen = c.gen;
    params.slotImplemented = c.slot;
    params.rootPort = c.root;
    unsigned base = chain.addPcie(0xd8, params);
    chain.finalize();

    std::uint16_t cap = cs.raw16(base + cfg::pcieCapReg);
    EXPECT_EQ(cap & 0xf, 2u); // capability version
    EXPECT_EQ((cap >> 4) & 0xf, static_cast<unsigned>(c.type));
    EXPECT_EQ((cap >> 8) & 1, c.slot ? 1u : 0u);

    std::uint32_t link_cap = cs.raw32(base + cfg::pcieLinkCap);
    EXPECT_EQ(link_cap & 0xf, c.gen);
    EXPECT_EQ((link_cap >> 4) & 0x3f, c.width);

    std::uint16_t link_status = cs.raw16(base + cfg::pcieLinkStatus);
    EXPECT_EQ(link_status & 0xfu, c.gen);
    EXPECT_EQ((link_status >> 4) & 0x3f, c.width);
}

INSTANTIATE_TEST_SUITE_P(
    PortTypes, PcieCapability,
    ::testing::Values(
        PcieCapCase{cfg::PciePortType::Endpoint, 1, 2, false, false},
        PcieCapCase{cfg::PciePortType::RootPort, 4, 2, true, true},
        PcieCapCase{cfg::PciePortType::SwitchUpstream, 4, 3, false,
                    false},
        PcieCapCase{cfg::PciePortType::SwitchDownstream, 1, 1, true,
                    false},
        PcieCapCase{cfg::PciePortType::Endpoint, 8, 3, false, false},
        PcieCapCase{cfg::PciePortType::Endpoint, 16, 2, false,
                    false},
        PcieCapCase{cfg::PciePortType::Endpoint, 32, 1, false,
                    false}));

TEST(Capability, DeviceControlMpsIsWritable)
{
    ConfigSpace cs;
    CapabilityChain chain(cs);
    unsigned base = chain.addPcie(0xd8, PcieCapParams{});
    chain.finalize();

    cs.write(base + cfg::pcieDevCtrl, 2, 2 << 5); // MPS = 512 B
    EXPECT_EQ((cs.read(base + cfg::pcieDevCtrl, 2) >> 5) & 0x7, 2u);
}

TEST(Capability, OffsetOutsideR2Panics)
{
    setLoggingThrows(true);
    ConfigSpace cs;
    CapabilityChain chain(cs);
    EXPECT_THROW(chain.addMsi(0x20), PanicError);   // inside header
    EXPECT_THROW(chain.addMsi(0x100), PanicError);  // in R3
    setLoggingThrows(false);
}
