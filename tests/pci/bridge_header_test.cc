/**
 * @file
 * Unit tests for the type-1 bridge header (paper Fig. 7): layout,
 * window encode/decode, and bus-number logic.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "pci/bridge_header.hh"
#include "pci/config_regs.hh"

using namespace pciesim;

namespace
{

ConfigSpace
freshBridge()
{
    ConfigSpace cs;
    BridgeHeader::initialize(cs, 0x8086, 0x9c90);
    return cs;
}

} // namespace

TEST(BridgeHeaderTest, Fig7HeaderLayout)
{
    ConfigSpace cs = freshBridge();
    EXPECT_EQ(cs.raw16(cfg::vendorId), 0x8086);
    EXPECT_EQ(cs.raw16(cfg::deviceId), 0x9c90);
    EXPECT_EQ(cs.raw8(cfg::headerType), cfg::headerTypeBridge);
    std::uint32_t class_code = cs.raw8(cfg::classCode) |
                               (cs.raw8(cfg::classCode + 1) << 8) |
                               (cs.raw8(cfg::classCode + 2) << 16);
    EXPECT_EQ(class_code, cfg::classBridgeP2p);
    // BARs are hard-wired zero ("requires no memory or I/O space",
    // paper Sec. V-A).
    cs.write(cfg::briBar0, 4, 0xffffffff);
    cs.write(cfg::briBar1, 4, 0xffffffff);
    EXPECT_EQ(cs.read(cfg::briBar0, 4), 0u);
    EXPECT_EQ(cs.read(cfg::briBar1, 4), 0u);
}

TEST(BridgeHeaderTest, PowerOnWindowsAreDisabled)
{
    ConfigSpace cs = freshBridge();
    EXPECT_TRUE(BridgeHeader::ioWindow(cs).empty());
    EXPECT_TRUE(BridgeHeader::memWindow(cs).empty());
    EXPECT_TRUE(BridgeHeader::prefWindow(cs).empty());
    EXPECT_FALSE(BridgeHeader::windowsContain(cs, 0x40000000));
}

TEST(BridgeHeaderTest, Advertises32BitIoAddressing)
{
    // Needed to reach the platform I/O window at 0x2f000000
    // (paper Sec. V-A uses the I/O Base/Limit Upper registers).
    ConfigSpace cs = freshBridge();
    EXPECT_EQ(cs.raw8(cfg::ioBase) & 0x0f, 0x01);
    EXPECT_EQ(cs.raw8(cfg::ioLimit) & 0x0f, 0x01);
}

TEST(BridgeHeaderTest, BusNumberProgramming)
{
    ConfigSpace cs = freshBridge();
    BridgeHeader::programBusNumbers(cs, 0, 2, 5);
    EXPECT_EQ(BridgeHeader::primaryBus(cs), 0u);
    EXPECT_EQ(BridgeHeader::secondaryBus(cs), 2u);
    EXPECT_EQ(BridgeHeader::subordinateBus(cs), 5u);
    EXPECT_FALSE(BridgeHeader::busInRange(cs, 1));
    EXPECT_TRUE(BridgeHeader::busInRange(cs, 2));
    EXPECT_TRUE(BridgeHeader::busInRange(cs, 5));
    EXPECT_FALSE(BridgeHeader::busInRange(cs, 6));
}

struct WindowCase
{
    Addr base;
    Addr limit; // inclusive
};

class MemWindowRoundTrip : public ::testing::TestWithParam<WindowCase>
{};

TEST_P(MemWindowRoundTrip, EncodeDecode)
{
    const auto &c = GetParam();
    ConfigSpace cs = freshBridge();
    BridgeHeader::programMemWindow(cs, c.base, c.limit);
    AddrRange w = BridgeHeader::memWindow(cs);
    EXPECT_EQ(w.start(), c.base);
    EXPECT_EQ(w.end(), c.limit + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Windows, MemWindowRoundTrip,
    ::testing::Values(
        WindowCase{0x40000000, 0x400fffff},  // 1 MB
        WindowCase{0x40000000, 0x7fffffff},  // the whole MMIO pool
        WindowCase{0x7ff00000, 0x7fffffff},  // top of the pool
        WindowCase{0x00100000, 0x002fffff})); // low memory

class IoWindowRoundTrip : public ::testing::TestWithParam<WindowCase>
{};

TEST_P(IoWindowRoundTrip, EncodeDecode)
{
    const auto &c = GetParam();
    ConfigSpace cs = freshBridge();
    BridgeHeader::programIoWindow(cs, c.base, c.limit);
    AddrRange w = BridgeHeader::ioWindow(cs);
    EXPECT_EQ(w.start(), c.base);
    EXPECT_EQ(w.end(), c.limit + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Windows, IoWindowRoundTrip,
    ::testing::Values(
        WindowCase{0x2f000000, 0x2f000fff},   // one 4 KB page
        WindowCase{0x2f000000, 0x2fffffff},   // the whole I/O pool
        WindowCase{0x2f7ff000, 0x2f7fffff},
        WindowCase{0x0000f000, 0x0000ffff})); // 16-bit legacy range

TEST(BridgeHeaderTest, WindowsContainChecksAllWindows)
{
    ConfigSpace cs = freshBridge();
    BridgeHeader::programMemWindow(cs, 0x40000000, 0x401fffff);
    BridgeHeader::programIoWindow(cs, 0x2f000000, 0x2f001fff);
    EXPECT_TRUE(BridgeHeader::windowsContain(cs, 0x40100000));
    EXPECT_TRUE(BridgeHeader::windowsContain(cs, 0x2f001000));
    EXPECT_FALSE(BridgeHeader::windowsContain(cs, 0x40200000));
    EXPECT_FALSE(BridgeHeader::windowsContain(cs, 0x2f002000));
}

TEST(BridgeHeaderTest, SoftwareWritesThroughConfigInterface)
{
    // The enumeration software writes through the maskable write
    // path; the decoders must see those values.
    ConfigSpace cs = freshBridge();
    cs.write(cfg::secondaryBus, 1, 3);
    cs.write(cfg::memoryBase, 2, 0x4000);  // A[31:20] = 0x400
    cs.write(cfg::memoryLimit, 2, 0x4010);
    EXPECT_EQ(BridgeHeader::secondaryBus(cs), 3u);
    AddrRange w = BridgeHeader::memWindow(cs);
    EXPECT_EQ(w.start(), 0x40000000u);
    EXPECT_EQ(w.end(), 0x40200000u);
}

TEST(BridgeHeaderTest, MisalignedProgrammingPanics)
{
    setLoggingThrows(true);
    ConfigSpace cs = freshBridge();
    EXPECT_THROW(BridgeHeader::programMemWindow(cs, 0x40080000,
                                                0x401fffff),
                 PanicError);
    EXPECT_THROW(BridgeHeader::programIoWindow(cs, 0x2f000800,
                                               0x2f000fff),
                 PanicError);
    setLoggingThrows(false);
}
