/**
 * @file
 * Unit tests for the enumeration software: depth-first discovery,
 * BAR sizing and allocation, bridge window/bus programming
 * (paper Sec. II-A and V-A).
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "pci/config_regs.hh"
#include "pci/enumerator.hh"
#include "pci/pci_device.hh"
#include "pcie/vp2p.hh"

using namespace pciesim;
using namespace pciesim::test;

namespace
{

class StubEndpoint : public PciDevice
{
  public:
    StubEndpoint(Simulation &sim, const std::string &name,
                 std::vector<BarSpec> bars,
                 std::uint16_t device_id = 0x1000)
        : PciDevice(sim, name,
                    [&] {
                        PciDeviceParams p;
                        p.deviceId = device_id;
                        p.bars = std::move(bars);
                        return p;
                    }())
    {}

    std::uint64_t readReg(unsigned, Addr, unsigned) override
    {
        return 0;
    }
    void writeReg(unsigned, Addr, unsigned, std::uint64_t) override {}
};

struct EnumFixture : ::testing::Test
{
    Simulation sim;
    PciHost host{sim, "host"};
};

} // namespace

TEST_F(EnumFixture, FlatBusWithOneEndpoint)
{
    StubEndpoint dev(sim, "dev",
                     {BarSpec{0x1000, false}, BarSpec{64, true}});
    host.registerFunction(dev, Bdf{0, 0, 0});

    Enumerator e(host);
    auto result = e.enumerate();

    ASSERT_EQ(result.functions.size(), 1u);
    const auto &fn = result.functions[0];
    EXPECT_FALSE(fn.isBridge);
    EXPECT_EQ(fn.deviceId, 0x1000);

    // BAR0: memory space, aligned to its size.
    EXPECT_EQ(fn.bars[0].size(), 0x1000u);
    EXPECT_TRUE(platform::memRange.covers(fn.bars[0]));
    EXPECT_EQ(fn.bars[0].start() % 0x1000, 0u);
    EXPECT_FALSE(fn.barIsIo[0]);

    // BAR1: I/O space.
    EXPECT_EQ(fn.bars[1].size(), 64u);
    EXPECT_TRUE(platform::ioRange.covers(fn.bars[1]));
    EXPECT_TRUE(fn.barIsIo[1]);

    // Device enabled and given an interrupt.
    EXPECT_TRUE(dev.memEnabled());
    EXPECT_TRUE(dev.ioEnabled());
    EXPECT_TRUE(dev.busMaster());
    EXPECT_NE(fn.irqLine, 0);

    // The device decodes its assigned ranges.
    EXPECT_EQ(dev.barRange(0), fn.bars[0]);
    EXPECT_EQ(dev.barRange(1), fn.bars[1]);
}

TEST_F(EnumFixture, MultipleDevicesGetDisjointResources)
{
    StubEndpoint a(sim, "a", {BarSpec{0x4000, false}}, 0x1001);
    StubEndpoint b(sim, "b", {BarSpec{0x1000, false}}, 0x1002);
    StubEndpoint c(sim, "c", {BarSpec{128, true}}, 0x1003);
    host.registerFunction(a, Bdf{0, 0, 0});
    host.registerFunction(b, Bdf{0, 5, 0});
    host.registerFunction(c, Bdf{0, 31, 0});

    Enumerator e(host);
    auto result = e.enumerate();
    ASSERT_EQ(result.functions.size(), 3u);

    AddrRangeList all;
    for (const auto &fn : result.functions) {
        for (const auto &bar : fn.bars) {
            if (!bar.empty())
                all.push_back(bar);
        }
    }
    EXPECT_EQ(all.size(), 3u);
    EXPECT_FALSE(listHasOverlap(all));

    // Distinct interrupt lines.
    EXPECT_NE(result.functions[0].irqLine,
              result.functions[1].irqLine);
    EXPECT_NE(result.functions[1].irqLine,
              result.functions[2].irqLine);
}

TEST_F(EnumFixture, BridgeHierarchyDepthFirstBusNumbers)
{
    // bus0: bridgeA (-> bus1: dev1), bridgeB (-> bus2: dev2).
    Vp2p bridge_a("bridgeA", Vp2pParams{});
    Vp2p bridge_b("bridgeB", Vp2pParams{});
    StubEndpoint dev1(sim, "dev1", {BarSpec{0x1000, false}}, 0x2001);
    StubEndpoint dev2(sim, "dev2", {BarSpec{0x1000, false}}, 0x2002);
    host.registerFunction(bridge_a, Bdf{0, 0, 0});
    host.registerFunction(bridge_b, Bdf{0, 1, 0});
    host.registerFunction(dev1, Bdf{1, 0, 0});
    host.registerFunction(dev2, Bdf{2, 0, 0});

    Enumerator e(host);
    auto result = e.enumerate();
    EXPECT_EQ(result.numBuses, 3u);

    const auto *ra = result.find(Bdf{0, 0, 0});
    const auto *rb = result.find(Bdf{0, 1, 0});
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    EXPECT_TRUE(ra->isBridge);
    EXPECT_EQ(ra->secondaryBus, 1u);
    EXPECT_EQ(ra->subordinateBus, 1u);
    EXPECT_EQ(rb->secondaryBus, 2u);
    EXPECT_EQ(rb->subordinateBus, 2u);

    // Bridge windows cover exactly their child's BAR.
    const auto *r1 = result.find(Bdf{1, 0, 0});
    ASSERT_NE(r1, nullptr);
    EXPECT_TRUE(bridge_a.memWindow().covers(r1->bars[0]));
    EXPECT_FALSE(bridge_b.memWindow().covers(r1->bars[0]));
    EXPECT_FALSE(bridge_a.memWindow()
                     .intersects(bridge_b.memWindow()));
    EXPECT_TRUE(bridge_a.forwardingEnabled());
    EXPECT_TRUE(bridge_a.busMasterEnabled());
}

TEST_F(EnumFixture, NestedBridgesGetNestedWindowsAndBusRanges)
{
    // bus0: rootBridge -> bus1: innerBridge -> bus2: leaf.
    Vp2p root("root", Vp2pParams{});
    Vp2pParams inner_params;
    inner_params.portType = cfg::PciePortType::SwitchUpstream;
    Vp2p inner("inner", inner_params);
    StubEndpoint leaf(sim, "leaf", {BarSpec{0x2000, false},
                                    BarSpec{32, true}});
    host.registerFunction(root, Bdf{0, 0, 0});
    host.registerFunction(inner, Bdf{1, 0, 0});
    host.registerFunction(leaf, Bdf{2, 0, 0});

    Enumerator e(host);
    auto result = e.enumerate();
    EXPECT_EQ(result.numBuses, 3u);

    EXPECT_EQ(root.secondaryBus(), 1u);
    EXPECT_EQ(root.subordinateBus(), 2u);
    EXPECT_EQ(inner.primaryBus(), 1u);
    EXPECT_EQ(inner.secondaryBus(), 2u);
    EXPECT_EQ(inner.subordinateBus(), 2u);

    const auto *rl = result.find(Bdf{2, 0, 0});
    ASSERT_NE(rl, nullptr);
    EXPECT_TRUE(inner.memWindow().covers(rl->bars[0]));
    EXPECT_TRUE(root.memWindow().covers(inner.memWindow()));
    EXPECT_TRUE(inner.ioWindow().covers(rl->bars[1]));
    EXPECT_TRUE(root.ioWindow().covers(inner.ioWindow()));

    EXPECT_TRUE(root.busInRange(2));
    EXPECT_TRUE(root.claims(rl->bars[0].start()));
    EXPECT_TRUE(inner.claims(rl->bars[0].start()));
}

TEST_F(EnumFixture, EmptyBridgeGetsNoWindows)
{
    Vp2p bridge("bridge", Vp2pParams{});
    host.registerFunction(bridge, Bdf{0, 0, 0});
    Enumerator e(host);
    auto result = e.enumerate();
    EXPECT_TRUE(bridge.memWindow().empty());
    EXPECT_TRUE(bridge.ioWindow().empty());
}

TEST_F(EnumFixture, MisregisteredBusNumberIsFatal)
{
    // A device registered on a bus the DFS never assigns.
    setLoggingThrows(true);
    StubEndpoint orphan(sim, "orphan", {BarSpec{0x1000, false}});
    host.registerFunction(orphan, Bdf{7, 0, 0});
    Enumerator e(host);
    EXPECT_THROW(e.enumerate(), FatalError);
    setLoggingThrows(false);
}

TEST_F(EnumFixture, ResultFindHelpers)
{
    StubEndpoint dev(sim, "dev", {BarSpec{0x1000, false}}, 0x7111);
    host.registerFunction(dev, Bdf{0, 3, 0});
    Enumerator e(host);
    auto result = e.enumerate();
    EXPECT_NE(result.find(0x8086, 0x7111), nullptr);
    EXPECT_EQ(result.find(0x8086, 0x9999), nullptr);
    EXPECT_NE(result.find(Bdf{0, 3, 0}), nullptr);
    EXPECT_EQ(result.find(Bdf{0, 4, 0}), nullptr);
}
