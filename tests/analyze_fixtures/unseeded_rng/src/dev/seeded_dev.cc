// Clean companion: engines seeded from the per-object Rng are
// deterministic and reproducible across runs.
#include <random>

namespace pciesim
{

int
seededDraw(std::uint64_t rng_seed)
{
    std::mt19937 gen(static_cast<unsigned>(rng_seed)); // Rng seed
    return static_cast<int>(gen());
}

} // namespace pciesim
