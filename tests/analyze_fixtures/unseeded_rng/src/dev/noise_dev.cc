// Should-fail fixture: libc and unseeded std <random> use.
#include <cstdlib>
#include <random>

namespace pciesim
{

int
noisyDraw()
{
    std::mt19937 gen;
    int base = rand();
    return base + static_cast<int>(gen());
}

} // namespace pciesim
