// Fixture: a pre-existing wall-clock read tolerated by
// baseline.json, so the run exits clean while the debt is listed.
#include <chrono>

namespace pciesim
{

std::uint64_t
legacyStamp()
{
    auto t = std::chrono::steady_clock::now();
    return t.time_since_epoch().count();
}

} // namespace pciesim
