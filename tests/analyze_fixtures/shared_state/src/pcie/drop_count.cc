// Should-fail fixture: a bare mutable static is written by every
// link domain's worker at once.
namespace pciesim
{

int
countDrop()
{
    static int dropCount = 0;
    return ++dropCount;
}

} // namespace pciesim
