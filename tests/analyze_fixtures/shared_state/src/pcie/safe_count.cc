// Clean companions: atomics, a lock held on use, or an explicit
// single-threaded annotation all satisfy the shared-state rule.
#include <atomic>
#include <mutex>

namespace pciesim
{

int
countAtomic()
{
    static std::atomic<int> count{0};
    return ++count;
}

int
countLocked()
{
    static std::mutex mutex;
    static int count = 0;
    std::lock_guard<std::mutex> lock(mutex);
    return ++count;
}

int
countAnnotated()
{
    // pciesim-analyze: single-threaded: stats epoch bookkeeping,
    // only touched by the coordinator between quanta.
    static int count = 0;
    return ++count;
}

} // namespace pciesim
