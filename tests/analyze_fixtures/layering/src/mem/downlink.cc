// Clean companion: mem may include sim and itself.
#include "mem/addr_range.hh"
#include "sim/ticks.hh"

namespace pciesim
{

int
downlinkProbe()
{
    return 0;
}

} // namespace pciesim
