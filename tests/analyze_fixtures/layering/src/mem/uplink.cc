// Should-fail fixture: a mem-layer file reaching up into pcie.
#include "pcie/pcie_link.hh"
#include "sim/ticks.hh"

namespace pciesim
{

int
uplinkProbe()
{
    return 1;
}

} // namespace pciesim
