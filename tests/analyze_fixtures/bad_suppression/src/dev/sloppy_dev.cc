// Should-fail fixture: an ignore[] pragma with no reason string is
// itself a finding, and it suppresses nothing.
#include <chrono>

namespace pciesim
{

std::uint64_t
sloppyStamp()
{
    // pciesim-analyze: ignore[wall-clock]
    auto t = std::chrono::steady_clock::now();
    return t.time_since_epoch().count();
}

} // namespace pciesim
