// Should-fail fixture: model code reading the host clock.
#include <chrono>

namespace pciesim
{

std::uint64_t
hostStampNs()
{
    auto t = std::chrono::steady_clock::now();
    return t.time_since_epoch().count();
}

} // namespace pciesim
