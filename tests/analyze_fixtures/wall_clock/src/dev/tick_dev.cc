// Clean companion: simulated time comes from the event queue.
namespace pciesim
{

std::uint64_t
simStamp(std::uint64_t cur_tick)
{
    return cur_tick + 500;
}

} // namespace pciesim
