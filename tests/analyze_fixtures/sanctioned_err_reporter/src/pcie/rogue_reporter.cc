// The sanction is file-scoped: the same pattern in a sibling pcie/
// file is still a cross-domain-schedule finding.
#include "pcie/rogue_reporter.hh"

namespace pciesim
{

void
RogueReporter::deliver(EventQueue *root_queue, Event *ev, Tick when)
{
    root_queue->schedule(ev, when);
}

} // namespace pciesim
