// Sanctioned fixture: the AER reporter delivers ERR_* messages by
// scheduling onto the root complex's home queue — the one blessed
// cross-domain hop outside the PcieLink mailbox (DESIGN.md §12).
#include "pcie/err_reporter.hh"

namespace pciesim
{

void
ErrReporter::deliver(EventQueue *root_queue, Event *ev, Tick when)
{
    root_queue->schedule(ev, when);
}

} // namespace pciesim
