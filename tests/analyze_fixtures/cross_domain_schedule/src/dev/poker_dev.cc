// Should-fail fixture: scheduling onto another object's event
// queue bypasses the PcieLink mailbox and races its worker.
namespace pciesim
{

struct FakeEvent;

struct FakeQueue
{
    void schedule(FakeEvent *e, long when);
};

struct Peer
{
    FakeQueue *eventq();
};

struct PokerDev
{
    Peer *peer_;
    FakeEvent *ev_;

    void
    pokePeer(long when)
    {
        peer_->eventq()->schedule(ev_, when);
    }
};

} // namespace pciesim
