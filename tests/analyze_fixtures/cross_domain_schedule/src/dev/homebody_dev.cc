// Clean companion: scheduling through the caller's own home queue
// (homeQueue_) or the SimObject helper stays inside the domain.
namespace pciesim
{

struct FakeEvent;

struct FakeQueue
{
    void schedule(FakeEvent *e, long when);
};

struct HomebodyDev
{
    FakeQueue *homeQueue_;
    FakeEvent *ev_;

    void
    kick(long when)
    {
        homeQueue_->schedule(ev_, when);
    }
};

} // namespace pciesim
