#ifndef PCIESIM_SIM_GAMMA_HH
#define PCIESIM_SIM_GAMMA_HH

// Clean companion: a one-way include is not a cycle.
#include "sim/beta.hh"

struct Gamma
{
    Beta *down;
};

#endif // PCIESIM_SIM_GAMMA_HH
