#ifndef PCIESIM_SIM_BETA_HH
#define PCIESIM_SIM_BETA_HH

#include "sim/alpha.hh"

struct Beta
{
    Alpha *peer;
};

#endif // PCIESIM_SIM_BETA_HH
