#ifndef PCIESIM_SIM_ALPHA_HH
#define PCIESIM_SIM_ALPHA_HH

// Should-fail fixture: alpha and beta include each other.
#include "sim/beta.hh"

struct Alpha
{
    Beta *peer;
};

#endif // PCIESIM_SIM_ALPHA_HH
