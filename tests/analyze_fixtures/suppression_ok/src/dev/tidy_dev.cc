// Clean fixture: a reasoned ignore[] pragma suppresses its rule on
// the next source line (continuation comments may wrap).
#include <chrono>

namespace pciesim
{

std::uint64_t
tidyStamp()
{
    // pciesim-analyze: ignore[wall-clock]: host-side diagnostics
    // only; never feeds simulated time or any stats dump.
    auto t = std::chrono::steady_clock::now();
    return t.time_since_epoch().count();
}

} // namespace pciesim
