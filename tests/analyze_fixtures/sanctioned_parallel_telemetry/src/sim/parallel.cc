// Sanctioned fixture: the flight recorder's cross-domain counter
// aggregation (DESIGN.md §14) lives in the parallel engine — the
// barrier completion step is the single writer that drains every
// mailbox, bumps the per-domain telemetry slots, and schedules the
// mailed events onto their destination queues. That foreign-queue
// schedule is the engine's own machinery, so sim/parallel.cc is on
// the analyzer's sanctioned file set.
namespace pciesim
{

struct FakeEvent;

struct FakeQueue
{
    void schedule(FakeEvent *e, long when);
};

struct FakeDomain
{
    FakeQueue *queue();
    unsigned long mailboxReceived;
};

struct FakeEngine
{
    FakeDomain *domains_;
    unsigned n_;

    void
    applyMailboxes(FakeEvent *op_ev, long when)
    {
        for (unsigned d = 0; d < n_; ++d) {
            FakeDomain *dst = &domains_[d];
            ++dst->mailboxReceived;
            dst->queue()->schedule(op_ev, when);
        }
    }
};

} // namespace pciesim
