// Should-fail fixture: a fabric roll-up that aggregates per-domain
// telemetry by scheduling a collection event straight onto each
// domain's queue. The sanction is file-scoped to the engine —
// topology code must read the engine's accessors (or registered
// stats) instead of reaching into foreign queues.
namespace pciesim
{

struct FakeEvent;

struct FakeQueue
{
    void schedule(FakeEvent *e, long when);
};

struct FakeDomain
{
    FakeQueue *queue();
    unsigned long events;
};

struct RogueRollup
{
    FakeDomain *domains_;
    unsigned n_;
    unsigned long total_;

    void
    collect(FakeEvent *probe, long when)
    {
        for (unsigned d = 0; d < n_; ++d) {
            FakeDomain *dom = &domains_[d];
            total_ += dom->events;
            dom->queue()->schedule(probe, when);
        }
    }
};

} // namespace pciesim
