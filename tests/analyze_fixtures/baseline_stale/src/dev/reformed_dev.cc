// Fixture: the violation this baseline entry tolerated has been
// fixed, so the analyzer warns that the baseline must ratchet.
namespace pciesim
{

std::uint64_t
reformedStamp(std::uint64_t cur_tick)
{
    return cur_tick;
}

} // namespace pciesim
