// Should-fail fixture: ordering by raw pointer value follows the
// allocator, so any iteration order can differ run to run.
#include <map>

namespace pciesim
{

struct Obj
{
    int id;
};

std::map<Obj *, int> ranks;

int
rankOf(Obj *o)
{
    auto it = ranks.find(o);
    return it == ranks.end() ? -1 : it->second;
}

} // namespace pciesim
