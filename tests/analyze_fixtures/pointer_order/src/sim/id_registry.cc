// Clean companion: key by a stable simulation-assigned id.
#include <map>

namespace pciesim
{

std::map<int, int> ranksById;

int
rankOfId(int id)
{
    auto it = ranksById.find(id);
    return it == ranksById.end() ? -1 : it->second;
}

} // namespace pciesim
