// Clean companion: the registration surface itself may name
// device models.
#include "dev/traffic_gen.hh"
#include "sim/ticks.hh"

namespace pciesim
{

int
builderProbe()
{
    return 0;
}

} // namespace pciesim
