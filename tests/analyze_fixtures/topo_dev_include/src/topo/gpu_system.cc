// Should-fail fixture: a topology wrapper wiring a device model by
// hand instead of describing it through the fabric builder.
#include "dev/traffic_gen.hh"
#include "sim/ticks.hh"

namespace pciesim
{

int
gpuSystemProbe()
{
    return 1;
}

} // namespace pciesim
