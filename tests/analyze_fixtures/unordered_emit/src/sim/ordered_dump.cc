// Clean companion: ordered std::map iteration emits in key order,
// which is stable across runs and thread counts.
#include <iostream>
#include <map>
#include <string>

namespace pciesim
{

std::map<std::string, int> orderedCounters;

void
dumpOrdered(std::ostream &os)
{
    for (const auto &kv : orderedCounters)
        os << kv.first << " " << kv.second << "\n";
}

} // namespace pciesim
