// Should-fail fixture: an unordered container iterated on a path
// that feeds an emitter (dumpCounters -> collect), so the dump
// order follows the hash table, not the model.
#include <iostream>
#include <string>
#include <unordered_map>

namespace pciesim
{

std::unordered_map<std::string, int> counters;

static std::string
collect()
{
    std::string out;
    for (const auto &kv : counters)
        out += kv.first;
    return out;
}

void
dumpCounters(std::ostream &os)
{
    os << collect() << "\n";
}

} // namespace pciesim
