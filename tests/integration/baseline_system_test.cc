/**
 * @file
 * Integration tests for the baseline (crossbar-only, stock-gem5
 * style) topology, and the ablation property that the PCIe model's
 * link serialization makes the detailed topology slower.
 */

#include <gtest/gtest.h>

#include "topo/baseline_system.hh"
#include "topo/storage_system.hh"

using namespace pciesim;

TEST(BaselineSystem, BootsAndRunsDd)
{
    Simulation sim;
    SystemConfig cfg;
    BaselineSystem system(sim, cfg);

    DdWorkloadParams dd;
    dd.blockBytes = 1 << 20;
    double gbps = system.runDd(dd);
    EXPECT_GT(gbps, 1.0);
    EXPECT_EQ(system.disk().bytesTransferred(), 1u << 20);
    EXPECT_EQ(Packet::liveCount(), 0u);
}

TEST(BaselineSystem, FasterThanPcieX1Model)
{
    // The whole point of the paper: the stock crossbar attachment
    // has no Gen 2 x1 serialization bottleneck, so it overestimates
    // I/O throughput relative to the detailed PCIe model.
    DdWorkloadParams dd;
    dd.blockBytes = 2 << 20;

    Simulation sim_base;
    BaselineSystem baseline(sim_base, SystemConfig{});
    double base_gbps = baseline.runDd(dd);

    Simulation sim_pcie;
    StorageSystem pcie(sim_pcie, SystemConfig{});
    double pcie_gbps = pcie.runDd(dd);

    EXPECT_GT(base_gbps, pcie_gbps * 1.3)
        << "baseline " << base_gbps << " vs pcie " << pcie_gbps;
}
