/**
 * @file
 * Integration tests for the traffic generator and the multi-device
 * fabric-sharing topology.
 */

#include <gtest/gtest.h>

#include "topo/multi_device_system.hh"

using namespace pciesim;

TEST(MultiDevice, EnumerationFindsAllGenerators)
{
    Simulation sim;
    MultiDeviceConfig cfg;
    cfg.numDevices = 4;
    MultiDeviceSystem system(sim, cfg);
    system.boot();

    const auto &result = system.kernel().enumerate();
    // switch up VP2P + 4 down VP2Ps + 4 generators = 9, plus the
    // 3 root-port VP2Ps = 12.
    EXPECT_EQ(result.functions.size(), 12u);
    unsigned gens = 0;
    AddrRangeList bars;
    for (const auto &fn : result.functions) {
        if (fn.deviceId == tgen::deviceId) {
            ++gens;
            bars.push_back(fn.bars[0]);
        }
    }
    EXPECT_EQ(gens, 4u);
    EXPECT_FALSE(listHasOverlap(bars));
}

TEST(MultiDevice, SingleGeneratorMovesItsBytes)
{
    Simulation sim;
    MultiDeviceConfig cfg;
    cfg.numDevices = 2;
    MultiDeviceSystem system(sim, cfg);

    double gbps = system.runConcurrentWrites(1, 64, 4096);
    EXPECT_GT(gbps, 0.5);
    EXPECT_EQ(system.device(0).bytesMoved(), 64u * 4096);
    EXPECT_EQ(system.device(0).burstsCompleted(), 64u);
    EXPECT_EQ(system.device(1).bytesMoved(), 0u);
    EXPECT_EQ(Packet::liveCount(), 0u);
}

TEST(MultiDevice, ConcurrentGeneratorsShareTheFabric)
{
    Simulation sim;
    MultiDeviceConfig cfg;
    cfg.numDevices = 4;
    cfg.base.upstreamLinkWidth = 4;
    MultiDeviceSystem system(sim, cfg);

    double agg = system.runConcurrentWrites(4, 64, 4096);
    EXPECT_GT(agg, 1.0);
    // Every device finished its share.
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(system.device(i).bytesMoved(), 64u * 4096)
            << "device " << i;
    }
    // Rough fairness: per-device goodputs within 3x of each other.
    double lo = 1e18, hi = 0.0;
    for (unsigned i = 0; i < 4; ++i) {
        double g = system.device(i).achievedGbps();
        lo = std::min(lo, g);
        hi = std::max(hi, g);
    }
    EXPECT_LT(hi / lo, 3.0);
}

TEST(MultiDevice, AggregateScalesThenSaturates)
{
    auto run = [](unsigned active) {
        Simulation sim;
        MultiDeviceConfig cfg;
        cfg.numDevices = 4;
        cfg.base.upstreamLinkWidth = 4;
        MultiDeviceSystem system(sim, cfg);
        return system.runConcurrentWrites(active, 64, 4096);
    };
    double one = run(1);
    double four = run(4);
    // More devices move more aggregate data, but not 4x (the
    // shared upstream link / drain saturates).
    EXPECT_GT(four, one * 1.2);
    EXPECT_LT(four, one * 4.0);
}
