/**
 * @file
 * Parallel determinism test: the multi-device topology run with one
 * worker thread and with four must produce bit-identical statistics
 * and the same final tick. This is the engine's non-negotiable
 * contract (DESIGN.md Sec. 10): event order is a pure function of
 * simulated history, never of how the OS interleaved the workers.
 * The bench-level tier-2 gate checks the same property over full
 * JSON exports; this in-process version runs in the tier-1 suite
 * and points at the first divergent stats line when it breaks.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "topo/multi_device_system.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

struct RunResult
{
    double gbps = 0.0;
    Tick endTick = 0;
    std::string stats;
};

/** One seeded multi-device run at the given worker count. The
 *  config keeps every link fault-free so the fabric actually
 *  partitions (one domain per link hop). */
RunResult
threadedRun(unsigned threads)
{
    MultiDeviceConfig cfg;
    cfg.base.threads = threads;
    cfg.base.upstreamLinkWidth = 16;
    cfg.base.linkPropagation = 500_ns;
    cfg.base.replayTimeoutScale = 100.0;
    cfg.base.ackImmediate = true;
    cfg.base.replayBufferSize = 32;
    cfg.base.portBufferSize = 64;
    cfg.numDevices = 8;
    cfg.deviceLinkWidth = 1;

    Simulation sim;
    MultiDeviceSystem system(sim, cfg);
    RunResult r;
    r.gbps = system.runConcurrentWrites(8, 4, 4096);
    r.endTick = sim.curTick();
    std::ostringstream os;
    sim.statsRegistry().dump(os);
    r.stats = os.str();
    return r;
}

/** First-divergent-line comparison (EXPECT_EQ's diff is quadratic
 *  on dumps this size). */
void
expectIdentical(const std::string &a, const std::string &b)
{
    if (a == b)
        return;
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    unsigned line = 0;
    while (true) {
        ++line;
        bool ga = static_cast<bool>(std::getline(sa, la));
        bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga || !gb || la != lb) {
            ADD_FAILURE()
                << "stats diverged between 1 and 4 worker threads "
                << "at line " << line << ":\n  1t: "
                << (ga ? la : "<eof>") << "\n  4t: "
                << (gb ? lb : "<eof>");
            return;
        }
    }
}

} // namespace

TEST(ParallelDeterminism, OneVsFourThreadsBitIdentical)
{
    RunResult one = threadedRun(1);
    RunResult four = threadedRun(4);

    // The run did something nontrivial on every device link.
    EXPECT_GT(one.gbps, 0.0);
    EXPECT_NE(one.stats.find("system.devLink7"), std::string::npos);

    EXPECT_EQ(one.endTick, four.endTick);
    EXPECT_EQ(one.gbps, four.gbps);
    expectIdentical(one.stats, four.stats);
}
