/**
 * @file
 * Determinism test: the same seeded fault configuration, run twice
 * in one process, must produce bit-identical statistics AND
 * bit-identical trace output. This is the property every golden
 * file and every debugging session leans on; if it breaks (an
 * unordered container iterated into the event stream, uninitialised
 * state, address-dependent ordering), this test points at the first
 * divergent line.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/trace.hh"
#include "topo/storage_system.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Compare two multi-megabyte strings without handing them to
 * EXPECT_EQ (whose unified-diff edit distance is quadratic in the
 * line count); on mismatch report only the first divergent line.
 */
void
expectIdentical(const std::string &a, const std::string &b,
                const char *what)
{
    if (a == b)
        return;
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    unsigned line = 0;
    while (true) {
        ++line;
        bool ga = static_cast<bool>(std::getline(sa, la));
        bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga || !gb || la != lb) {
            ADD_FAILURE()
                << what << " diverged between two identically-"
                << "seeded runs at line " << line << ":\n  run A: "
                << (ga ? la : "<eof>") << "\n  run B: "
                << (gb ? lb : "<eof>");
            return;
        }
    }
}

/**
 * One seeded run: faulty dd with full tracing into @p trace_path.
 * @return the complete stats dump.
 */
std::string
seededRun(const std::string &trace_path)
{
    std::string dump;
    {
        Simulation sim;
        SystemConfig cfg;
        cfg.linkBitErrorRate = 2e-6;
        cfg.faultSeed = 42;
        cfg.traceOut = trace_path;
        cfg.traceFlags = "All";
        StorageSystem system(sim, cfg);
        DdWorkloadParams dd;
        dd.blockBytes = 512 * 1024;
        system.runDd(dd);
        std::ostringstream os;
        sim.statsRegistry().dump(os);
        dump = os.str();
    }
    trace::closeSinks();
    trace::setEnabledFlags(0u);
    return dump;
}

} // namespace

TEST(Determinism, SeededFaultRunIsBitIdentical)
{
    const std::string path_a = "determinism_a.json";
    const std::string path_b = "determinism_b.json";

    std::string stats_a = seededRun(path_a);
    std::string stats_b = seededRun(path_b);

    // The runs actually did something nontrivial.
    EXPECT_NE(stats_a.find("crcErrorsTlp"), std::string::npos);
    ASSERT_FALSE(stats_a.empty());

    expectIdentical(stats_a, stats_b, "stats dump");

    std::string trace_a = slurp(path_a);
    std::string trace_b = slurp(path_b);
#if PCIESIM_TRACING
    ASSERT_GT(trace_a.size(), 1000u);
#endif
    expectIdentical(trace_a, trace_b, "trace");

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}
