/**
 * @file
 * End-to-end tests of the paper's validation topology: boot
 * (enumeration + driver probe), dd transfers, and the emergent
 * link-layer behaviour the evaluation section reports.
 */

#include <gtest/gtest.h>

#include "topo/storage_system.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

SystemConfig
defaultConfig()
{
    SystemConfig cfg;
    return cfg;
}

} // namespace

TEST(StorageSystem, BootEnumeratesAndProbes)
{
    Simulation sim;
    StorageSystem system(sim, defaultConfig());
    system.boot();

    const auto &result = system.kernel().enumerate();
    // 3 root-port VP2Ps + switch upstream + 2 switch downstream
    // VP2Ps + the disk = 7 functions.
    EXPECT_EQ(result.functions.size(), 7u);
    EXPECT_TRUE(system.ideDriver().probed());

    // The disk must live on bus 3 (paper's DFS ordering).
    const EnumeratedFunction *disk = result.find(0x8086, 0x7111);
    ASSERT_NE(disk, nullptr);
    EXPECT_EQ(disk->bdf.bus, 3);

    // Bridge windows must nest: RC VP2P window covers the switch
    // upstream VP2P window, which covers the disk BARs.
    AddrRange rc_io = system.rootComplex().vp2p(0).ioWindow();
    AddrRange sw_io = system.pcieSwitch().upstreamVp2p().ioWindow();
    AddrRange dn_io =
        system.pcieSwitch().downstreamVp2p(0).ioWindow();
    EXPECT_TRUE(rc_io.covers(sw_io));
    EXPECT_TRUE(sw_io.covers(dn_io));
    for (unsigned bar = 0; bar < disk->bars.size(); ++bar) {
        if (!disk->bars[bar].empty()) {
            EXPECT_TRUE(dn_io.covers(disk->bars[bar]))
                << "BAR " << bar;
        }
    }
}

TEST(StorageSystem, SmallDdTransferCompletes)
{
    Simulation sim;
    StorageSystem system(sim, defaultConfig());

    DdWorkloadParams dd;
    dd.blockBytes = 1 << 20; // 1 MB
    double gbps = system.runDd(dd);

    EXPECT_GT(gbps, 0.1);
    // A Gen2 x1 link cannot exceed 4 Gbps minus TLP overheads.
    EXPECT_LT(gbps, 3.2);
    EXPECT_EQ(system.disk().bytesTransferred(), 1u << 20);
    EXPECT_EQ(Packet::liveCount(), 0u) << "packet leak";
}

TEST(StorageSystem, DeviceLevelThroughputNearGen2X1Line)
{
    // Paper Sec. VI-B: at device level each 4 KB chunk moves at
    // ~3.07 Gbps over a Gen 2 x1 link (64 B payload per 168 ns).
    Simulation sim;
    SystemConfig cfg = defaultConfig();
    StorageSystem system(sim, cfg);

    DdWorkloadParams dd;
    dd.blockBytes = 4 << 20;
    system.runDd(dd);

    double bytes =
        static_cast<double>(system.disk().bytesTransferred());
    double secs = ticksToSeconds(system.disk().activeTransferTicks());
    double device_gbps = bytes * 8.0 / secs / 1e9;
    // The active-transfer measure includes chunk gaps and barrier
    // tails, so expect it within a loose band of the 3.05 ideal.
    EXPECT_GT(device_gbps, 1.5);
    EXPECT_LT(device_gbps, 3.1);
}
