/**
 * @file
 * Tests for the posted-write extension (the feature the paper's
 * Sec. VI-B names as missing from its model).
 */

#include <gtest/gtest.h>

#include "topo/storage_system.hh"

using namespace pciesim;

TEST(PostedWrites, CommandClassification)
{
    PacketPtr p = Packet::makeRequest(MemCmd::PostedWriteReq, 0, 64);
    EXPECT_TRUE(p->isRequest());
    EXPECT_TRUE(p->isWrite());
    EXPECT_FALSE(p->needsResponse());
    // A posted write still carries its payload on the wire.
    EXPECT_EQ(p->tlpPayloadSize(), 64u);
}

TEST(PostedWrites, DdCompletesAndMovesAllData)
{
    Simulation sim;
    SystemConfig cfg;
    cfg.disk.postedWrites = true;
    StorageSystem system(sim, cfg);
    DdWorkloadParams dd;
    dd.blockBytes = 1 << 20;
    double gbps = system.runDd(dd);
    EXPECT_GT(gbps, 0.5);
    EXPECT_EQ(system.disk().bytesTransferred(), 1u << 20);
    EXPECT_EQ(Packet::liveCount(), 0u);
    // The only responses flowing back down are the PRD-fetch read
    // completions (one small read per DMA command) - none of the
    // 16384 data writes generated one.
    auto &reg = sim.statsRegistry();
    EXPECT_EQ(reg.counterValue("system.rc.fwdDownResponses"),
              system.disk().commandsCompleted());
}

TEST(PostedWrites, FasterThanNonPostedAtX1)
{
    // The paper's own prediction: requiring responses for writes
    // underestimates bandwidth relative to real (posted) PCIe.
    DdWorkloadParams dd;
    dd.blockBytes = 2 << 20;

    Simulation sim_np;
    SystemConfig cfg_np;
    StorageSystem nonposted(sim_np, cfg_np);
    double np = nonposted.runDd(dd);

    Simulation sim_p;
    SystemConfig cfg_p;
    cfg_p.disk.postedWrites = true;
    StorageSystem posted(sim_p, cfg_p);
    double p = posted.runDd(dd);

    EXPECT_GT(p, np);
}
