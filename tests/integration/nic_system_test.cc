/**
 * @file
 * Integration tests for the NIC topology: the e1000e driver probe
 * sequence of paper Sec. IV (capability walk, MSI/MSI-X fallback to
 * legacy interrupts, EEPROM MAC read) and frame exchange between
 * two NICs across the PCI-Express fabric.
 */

#include <gtest/gtest.h>

#include "topo/nic_system.hh"

using namespace pciesim;
using namespace pciesim::literals;

TEST(NicSystem, E1000eProbeFallsBackToLegacyInterrupts)
{
    Simulation sim;
    NicSystem system(sim, NicSystemConfig{});
    system.boot();

    E1000eDriver &drv = system.driver();
    EXPECT_TRUE(drv.probed());
    // The paper's template disables PM/MSI/MSI-X; the driver must
    // have observed the hard-wired-zero enable bits and registered
    // a legacy handler.
    EXPECT_TRUE(drv.sawMsiDisabled());
    EXPECT_TRUE(drv.sawMsixDisabled());
    EXPECT_TRUE(drv.usingLegacyIrq());
    EXPECT_TRUE(drv.linkUp());
    // MAC assembled from the three EEPROM words.
    EXPECT_EQ(drv.macAddress(), 0x9a7856341200ull);
}

TEST(NicSystem, EnumerationPlacesNicOnBusOne)
{
    Simulation sim;
    NicSystem system(sim, NicSystemConfig{});
    system.boot();
    const auto &result = system.kernel().enumerate();
    const EnumeratedFunction *nic = result.find(0x8086, 0x10d3);
    ASSERT_NE(nic, nullptr);
    EXPECT_EQ(nic->bdf.bus, 1);
    EXPECT_EQ(nic->bars[0].size(), 128u * 1024);
    // The root port VP2P window covers the NIC BAR.
    EXPECT_TRUE(system.rootComplex().vp2p(0).memWindow().covers(
        nic->bars[0]));
}

TEST(NicSystem, LoopbackFrameTransmission)
{
    Simulation sim;
    NicSystemConfig cfg;
    NicSystem system(sim, cfg);
    system.boot();

    unsigned received = 0;
    system.driver().setOnReceive([&](unsigned len) {
        EXPECT_EQ(len, 512u);
        ++received;
    });

    bool sent = false;
    system.driver().sendFrame(512, [&] { sent = true; });
    sim.run();
    EXPECT_TRUE(sent);
    // Loopback: the frame reflects back into the same NIC's RX.
    EXPECT_EQ(received, 1u);
    EXPECT_EQ(system.nic().framesTransmitted(), 1u);
    EXPECT_EQ(system.nic().framesReceived(), 1u);
}

TEST(NicSystem, TwoNicsExchangeFrames)
{
    Simulation sim;
    NicSystemConfig cfg;
    cfg.twoNics = true;
    NicSystem system(sim, cfg);
    system.boot();

    unsigned rx1 = 0;
    system.driver(1).setOnReceive([&](unsigned) { ++rx1; });

    bool sent = false;
    for (unsigned i = 0; i < 4; ++i)
        system.driver(0).sendFrame(1024, [&] { sent = true; });
    sim.run();
    EXPECT_TRUE(sent);
    EXPECT_EQ(system.nic(0).framesTransmitted(), 4u);
    EXPECT_EQ(system.nic(1).framesReceived(), 4u);
    EXPECT_EQ(rx1, 4u);
    EXPECT_EQ(Packet::liveCount(), 0u) << "packet leak";
}

TEST(NicSystem, MmioLatencyScalesWithRcLatency)
{
    // The Table II relationship, as a property: each root complex
    // latency step adds about twice the step to the MMIO read
    // latency (request and response both cross the RC).
    std::vector<Tick> lat;
    for (unsigned rc : {50u, 100u, 150u}) {
        Simulation sim;
        NicSystemConfig cfg;
        cfg.base.rcLatency = nanoseconds(rc);
        NicSystem system(sim, cfg);
        lat.push_back(system.measureMmioReadLatency(50));
    }
    EXPECT_GT(lat[1], lat[0]);
    EXPECT_GT(lat[2], lat[1]);
    Tick step1 = lat[1] - lat[0];
    Tick step2 = lat[2] - lat[1];
    // 50 ns RC step -> ~100 ns MMIO step, within a tolerance.
    EXPECT_NEAR(static_cast<double>(step1), 100e3, 20e3);
    EXPECT_NEAR(static_cast<double>(step2), 100e3, 20e3);
}
