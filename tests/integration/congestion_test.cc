/**
 * @file
 * Integration tests of the emergent link-layer congestion behaviour
 * the paper's evaluation reports (Sec. VI-B): replays appear at x8
 * but not at narrow widths, shrink with source throttling (small
 * replay buffers) and vanish with larger port buffers.
 */

#include <gtest/gtest.h>

#include "topo/storage_system.hh"

using namespace pciesim;

namespace
{

struct RunResult
{
    double gbps;
    double replayFraction;
    std::uint64_t timeouts;
};

RunResult
runDd(unsigned width, std::size_t replay_buf, std::size_t port_buf)
{
    Simulation sim;
    SystemConfig cfg;
    cfg.upstreamLinkWidth = width;
    cfg.downstreamLinkWidth = width;
    cfg.replayBufferSize = replay_buf;
    cfg.portBufferSize = port_buf;
    StorageSystem system(sim, cfg);
    DdWorkloadParams dd;
    dd.blockBytes = 1 << 20;
    RunResult r;
    r.gbps = system.runDd(dd);
    auto &reg = sim.statsRegistry();
    std::uint64_t tx =
        reg.counterValue("system.downLink.down.txTlps") +
        reg.counterValue("system.upLink.down.txTlps");
    std::uint64_t replays =
        reg.counterValue("system.downLink.down.replayedTlps") +
        reg.counterValue("system.upLink.down.replayedTlps");
    r.replayFraction =
        tx ? static_cast<double>(replays) / static_cast<double>(tx)
           : 0.0;
    r.timeouts = reg.counterValue("system.downLink.down.timeouts") +
                 reg.counterValue("system.upLink.down.timeouts");
    return r;
}

} // namespace

class WidthSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(WidthSweep, NarrowLinksSeeNoReplays)
{
    // Paper: "the replay percentage for x2 and x4 configuration is
    // almost zero"; it is exactly zero for x1 and x2 here.
    RunResult r = runDd(GetParam(), 4, 16);
    EXPECT_EQ(r.timeouts, 0u);
    EXPECT_DOUBLE_EQ(r.replayFraction, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(1u, 2u));

TEST(CongestionTest, X8OverrunsBuffersAndDropsThroughput)
{
    RunResult x4 = runDd(4, 4, 16);
    RunResult x8 = runDd(8, 4, 16);
    // x8 sees substantial replays; throughput drops below x4
    // (paper Fig. 9b).
    EXPECT_GT(x8.replayFraction, 0.05);
    EXPECT_GT(x8.timeouts, 100u);
    EXPECT_LT(x8.gbps, x4.gbps);
}

TEST(CongestionTest, SmallReplayBufferThrottlesTheSource)
{
    // Paper Fig. 9c: replay buffer 1 produces no timeouts; 4
    // produces many; 1's throughput beats 4's.
    RunResult rp1 = runDd(8, 1, 16);
    RunResult rp4 = runDd(8, 4, 16);
    EXPECT_EQ(rp1.timeouts, 0u);
    EXPECT_GT(rp4.timeouts, 100u);
    EXPECT_GT(rp1.gbps, rp4.gbps);
}

TEST(CongestionTest, LargerPortBuffersRemoveTimeouts)
{
    // Paper Fig. 9d: growing the switch/root port buffers from 16
    // to 28 removes the timeouts and lifts throughput.
    RunResult pb16 = runDd(8, 4, 16);
    RunResult pb28 = runDd(8, 4, 28);
    EXPECT_GT(pb16.timeouts, pb28.timeouts);
    EXPECT_GT(pb28.gbps, pb16.gbps);
    EXPECT_LT(pb28.replayFraction, pb16.replayFraction);
}
