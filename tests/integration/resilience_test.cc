/**
 * @file
 * End-to-end error containment and recovery (DESIGN.md §12): a
 * surprise hot-unplug mid-DMA is reported through AER, contained at
 * the switch, and recovered by the kernel + driver so dd still
 * completes; link degradation steps the operating point down under
 * sustained errors; and every seeded fault run stays bit-identical
 * from the seed.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "topo/storage_system.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

struct RunResult
{
    double gbps = 0.0;
    std::string statsDump;
};

RunResult
runOnce(const SystemConfig &cfg, std::uint64_t block_bytes,
        const std::function<void(StorageSystem &)> &check = nullptr)
{
    Simulation sim;
    StorageSystem system(sim, cfg);
    DdWorkloadParams dd;
    dd.blockBytes = block_bytes;

    RunResult r;
    r.gbps = system.runDd(dd);
    if (check)
        check(system);
    std::ostringstream os;
    sim.statsRegistry().dump(os);
    r.statsDump = os.str();
    return r;
}

} // namespace

TEST(ResilienceTest, SurpriseUnplugRecoversAndDdCompletes)
{
    setInformEnabled(false);
    SystemConfig cfg;
    cfg.aerEnabled = true;
    cfg.unplugAtChunk = 8; // mid-transfer: a 1 MB dd has 256 chunks

    RunResult r = runOnce(cfg, 1 << 20, [](StorageSystem &sys) {
        // The scripted fault fired exactly once, mid-DMA.
        EXPECT_EQ(sys.disk().unplugs(), 1u);
        EXPECT_FALSE(sys.disk().unplugged()); // re-seated
        // It was reported as ERR_FATAL and serviced by the kernel.
        ASSERT_NE(sys.errReporter(), nullptr);
        ASSERT_NE(sys.aerHandler(), nullptr);
        EXPECT_GE(sys.errReporter()->delivered(ErrSeverity::Fatal),
                  1u);
        EXPECT_GE(sys.aerHandler()->irqsServiced(), 1u);
        EXPECT_GE(sys.aerHandler()->errorsSeen(ErrSeverity::Fatal),
                  1u);
        EXPECT_GE(sys.aerHandler()->functionResets(), 1u);
        // The driver lost its in-flight command and re-issued it.
        EXPECT_GE(sys.ideDriver().lostRequests(), 1u);
        EXPECT_GE(sys.ideDriver().recoveries(), 1u);
        // Containment was released: the port passes traffic again.
        EXPECT_FALSE(sys.pcieSwitch().portContained(0));
        // The kernel serviced (W1C-cleared) the root error status.
        EXPECT_EQ(sys.rootComplex().vp2p(0).aer().rootErrStatus(),
                  0u);
    });

    // Forward progress: the workload completed despite the unplug.
    EXPECT_GT(r.gbps, 0.0);
}

TEST(ResilienceTest, UnplugRunIsBitReproducible)
{
    setInformEnabled(false);
    SystemConfig cfg;
    cfg.aerEnabled = true;
    cfg.unplugAtChunk = 8;

    RunResult a = runOnce(cfg, 1 << 20);
    RunResult b = runOnce(cfg, 1 << 20);
    EXPECT_EQ(a.gbps, b.gbps);
    EXPECT_EQ(a.statsDump, b.statsDump);
}

TEST(ResilienceTest, QuiescentAerLeavesStatsDumpIdentical)
{
    // AER wiring present but no errors: the stats dump must be
    // byte-identical to a run without AER, the property that keeps
    // the golden files valid (ISSUE 8 acceptance).
    setInformEnabled(false);
    SystemConfig plain;
    RunResult base = runOnce(plain, 1 << 20);

    SystemConfig aer;
    aer.aerEnabled = true;
    RunResult quiet = runOnce(aer, 1 << 20, [](StorageSystem &sys) {
        EXPECT_EQ(sys.errReporter()->delivered(
                      ErrSeverity::Correctable), 0u);
        EXPECT_EQ(sys.errReporter()->delivered(ErrSeverity::Fatal),
                  0u);
        EXPECT_EQ(sys.aerHandler()->irqsServiced(), 0u);
    });

    EXPECT_EQ(base.gbps, quiet.gbps);
    // AER-only objects register their own stats blocks; everything
    // shared must match line for line. Filter the AER-only names.
    std::istringstream qs(quiet.statsDump);
    std::string filtered, line;
    while (std::getline(qs, line)) {
        if (line.find("system.errReporter") != std::string::npos ||
            line.find("system.aerHandler") != std::string::npos ||
            line.find("system.ideDriver") != std::string::npos ||
            line.find(".containments") != std::string::npos ||
            line.find(".containedDrops") != std::string::npos ||
            line.find(".urCompletions") != std::string::npos) {
            continue;
        }
        filtered += line + '\n';
    }
    EXPECT_EQ(base.statsDump, filtered);
}

TEST(ResilienceTest, SustainedErrorsDegradeTheLink)
{
    // A lossy link above the degradation threshold steps its
    // operating point down (Gen first) instead of livelocking in
    // replay; dd still completes at reduced rate.
    setInformEnabled(false);
    SystemConfig cfg;
    cfg.linkBitErrorRate = 1e-5;
    cfg.faultSeed = 7;
    cfg.degradeThreshold = 4;
    cfg.degradeWindow = 100_us;
    cfg.upconfigureDelay = 1_s; // stay degraded through the run

    RunResult r = runOnce(cfg, 1 << 20, [](StorageSystem &sys) {
        std::uint64_t degradations = 0;
        std::uint64_t upconfigures = 0;
        for (PcieLink *link : sys.links()) {
            degradations += link->errorStats().degradations;
            upconfigures += link->errorStats().upconfigures;
            // The run drains the upconfigure timers before ending,
            // so every ladder step down was eventually undone.
            EXPECT_FALSE(link->degraded());
        }
        EXPECT_GE(degradations, 1u);
        EXPECT_GE(upconfigures, 1u);
    });
    EXPECT_GT(r.gbps, 0.0);
}

TEST(ResilienceTest, DegradedLinkUpconfiguresAfterBackoff)
{
    // With a short back-off the link returns toward its configured
    // operating point once the error burst passes.
    setInformEnabled(false);
    SystemConfig cfg;
    cfg.linkBitErrorRate = 1e-6; // sparse: bursts, then quiet
    cfg.faultSeed = 11;
    cfg.degradeThreshold = 2;
    cfg.degradeWindow = 50_us;
    cfg.upconfigureDelay = 20_us;

    runOnce(cfg, 1 << 20, [](StorageSystem &sys) {
        std::uint64_t degradations = 0;
        std::uint64_t upconfigures = 0;
        for (PcieLink *link : sys.links()) {
            degradations += link->errorStats().degradations;
            upconfigures += link->errorStats().upconfigures;
        }
        EXPECT_GE(degradations, 1u);
        EXPECT_GE(upconfigures, 1u);
    });
}

TEST(ResilienceTest, DegradationRunIsBitReproducible)
{
    setInformEnabled(false);
    SystemConfig cfg;
    cfg.linkBitErrorRate = 1e-5;
    cfg.faultSeed = 7;
    cfg.degradeThreshold = 4;
    cfg.aerEnabled = true;

    RunResult a = runOnce(cfg, 1 << 20);
    RunResult b = runOnce(cfg, 1 << 20);
    EXPECT_EQ(a.statsDump, b.statsDump);
}
