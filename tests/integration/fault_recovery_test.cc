/**
 * @file
 * End-to-end fault injection on the storage topology: dd completes
 * on lossy links, the error accounting is consistent, and fault
 * runs are bit-reproducible from the seed (the property that makes
 * lossy-link experiments debuggable).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "topo/storage_system.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

/** Run dd once and return the full stats dump plus goodput. */
struct RunResult
{
    double gbps = 0.0;
    std::string statsDump;
    LinkErrorStats links;
    std::uint64_t completionTimeouts = 0;
};

RunResult
runOnce(const SystemConfig &cfg, std::uint64_t block_bytes)
{
    Simulation sim;
    StorageSystem system(sim, cfg);
    DdWorkloadParams dd;
    dd.blockBytes = block_bytes;

    RunResult r;
    r.gbps = system.runDd(dd);
    for (PcieLink *link : system.links())
        r.links += link->errorStats();
    r.completionTimeouts = system.kernel().completionTimeouts() +
                           system.disk().dmaCompletionTimeouts();
    std::ostringstream os;
    sim.statsRegistry().dump(os);
    r.statsDump = os.str();
    return r;
}

} // namespace

TEST(FaultRecoveryTest, DdCompletesOnLossyLinks)
{
    setInformEnabled(false);
    SystemConfig cfg;
    cfg.linkBitErrorRate = 1e-5;
    cfg.completionTimeout = 1_ms;
    RunResult r = runOnce(cfg, 1 << 20);

    EXPECT_GT(r.gbps, 0.0);
    // The BER actually bit: errors were injected and recovered.
    EXPECT_GT(r.links.crcErrorsTlp, 0u);
    EXPECT_GT(r.links.naksSent, 0u);
    EXPECT_GT(r.links.replayedTlps, 0u);
    // Every NAK that was received was previously sent; corrupted
    // NAK DLLPs may be lost on the wire, never invented.
    EXPECT_LE(r.links.naksReceived, r.links.naksSent);
    // The workload completed; nothing had to be aborted.
    EXPECT_EQ(r.completionTimeouts, 0u);
}

TEST(FaultRecoveryTest, SameSeedIsBitReproducible)
{
    setInformEnabled(false);
    SystemConfig cfg;
    cfg.linkBitErrorRate = 1e-5;
    cfg.faultSeed = 7;
    RunResult a = runOnce(cfg, 1 << 20);
    RunResult b = runOnce(cfg, 1 << 20);

    EXPECT_GT(a.links.crcErrorsTlp, 0u); // faults happened
    EXPECT_EQ(a.gbps, b.gbps);
    EXPECT_EQ(a.statsDump, b.statsDump); // every counter identical
}

TEST(FaultRecoveryTest, DifferentSeedDrawsDifferentFaults)
{
    setInformEnabled(false);
    SystemConfig cfg;
    cfg.linkBitErrorRate = 1e-4; // dense enough that streams differ
    cfg.faultSeed = 1;
    RunResult a = runOnce(cfg, 1 << 20);
    cfg.faultSeed = 2;
    RunResult b = runOnce(cfg, 1 << 20);

    EXPECT_GT(a.links.crcErrorsTlp, 0u);
    EXPECT_GT(b.links.crcErrorsTlp, 0u);
    EXPECT_NE(a.statsDump, b.statsDump);
}

TEST(FaultRecoveryTest, FaultFreeRunReportsNoErrors)
{
    setInformEnabled(false);
    SystemConfig cfg;
    RunResult r = runOnce(cfg, 1 << 20);
    EXPECT_GT(r.gbps, 0.0);
    EXPECT_EQ(r.links.crcErrorsTlp, 0u);
    EXPECT_EQ(r.links.crcErrorsDllp, 0u);
    EXPECT_EQ(r.links.naksSent, 0u);
    EXPECT_EQ(r.links.naksReceived, 0u);
    EXPECT_EQ(r.links.retrains, 0u);
    EXPECT_EQ(r.completionTimeouts, 0u);
}

TEST(FaultRecoveryTest, PerLinkStatsAccessorCoversTheFabric)
{
    setInformEnabled(false);
    Simulation sim;
    SystemConfig cfg;
    StorageSystem system(sim, cfg);
    auto links = system.links();
    ASSERT_EQ(links.size(), 2u);
    EXPECT_EQ(links[0], &system.upstreamLink());
    EXPECT_EQ(links[1], &system.downstreamLink());
}
