/**
 * @file
 * The single-queue fallback contract (DESIGN.md §10/§12): fault
 * configurations pin the fabric to one event-queue domain, so
 * `--threads N` must construct and run the exact system `threads=0`
 * does — byte-identical stats, not merely equivalent ones. Guards
 * the warn-once fallback path in StorageSystem against quietly
 * drifting from the legacy construction.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "topo/storage_system.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

std::string
runOnce(SystemConfig cfg, unsigned threads)
{
    cfg.threads = threads;
    Simulation sim;
    StorageSystem system(sim, cfg);
    DdWorkloadParams dd;
    dd.blockBytes = 1 << 20;
    system.runDd(dd);
    std::ostringstream os;
    sim.statsRegistry().dump(os);
    return os.str();
}

} // namespace

TEST(FallbackDeterminismTest, FaultConfigByteMatchesThreadsZero)
{
    setInformEnabled(false);
    SystemConfig cfg;
    cfg.linkBitErrorRate = 1e-6;
    cfg.faultSeed = 7;
    EXPECT_EQ(runOnce(cfg, 0), runOnce(cfg, 4));
}

TEST(FallbackDeterminismTest, AerUnplugConfigByteMatchesThreadsZero)
{
    setInformEnabled(false);
    SystemConfig cfg;
    cfg.aerEnabled = true;
    cfg.unplugAtChunk = 8;
    EXPECT_EQ(runOnce(cfg, 0), runOnce(cfg, 2));
}

TEST(FallbackDeterminismTest, DegradationConfigByteMatchesThreadsZero)
{
    setInformEnabled(false);
    SystemConfig cfg;
    cfg.linkBitErrorRate = 1e-5;
    cfg.faultSeed = 3;
    cfg.degradeThreshold = 4;
    EXPECT_EQ(runOnce(cfg, 0), runOnce(cfg, 2));
}
