/**
 * @file
 * Tests for the MSI extension: the interrupt delivery mode the
 * paper's template deliberately disables (Sec. IV), implemented
 * here as posted message TLPs through the fabric.
 */

#include <gtest/gtest.h>

#include "topo/nic_system.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

NicSystemConfig
msiConfig()
{
    NicSystemConfig cfg;
    cfg.nic.allowMsi = true;
    cfg.driver.preferMsi = true;
    return cfg;
}

} // namespace

TEST(Msi, DriverEnablesMsiWhenDeviceAllowsIt)
{
    Simulation sim;
    NicSystem system(sim, msiConfig());
    system.boot();
    EXPECT_TRUE(system.driver().usingMsi());
    EXPECT_FALSE(system.driver().usingLegacyIrq());
    EXPECT_FALSE(system.driver().sawMsiDisabled());
}

TEST(Msi, PaperTemplateStillForcesIntx)
{
    // Default devices keep the enable bit hard-wired zero; even an
    // MSI-preferring driver must fall back to legacy interrupts.
    Simulation sim;
    NicSystemConfig cfg;
    cfg.nic.allowMsi = false;
    cfg.driver.preferMsi = true;
    NicSystem system(sim, cfg);
    system.boot();
    EXPECT_FALSE(system.driver().usingMsi());
    EXPECT_TRUE(system.driver().sawMsiDisabled());
    EXPECT_TRUE(system.driver().usingLegacyIrq());
}

TEST(Msi, CompletionsDeliveredAsMessageTlps)
{
    Simulation sim;
    NicSystem system(sim, msiConfig());
    system.boot();

    unsigned received = 0;
    system.driver().setOnReceive([&](unsigned) { ++received; });
    bool sent = false;
    system.driver().sendFrame(256, [&] { sent = true; });
    sim.run();

    EXPECT_TRUE(sent);
    EXPECT_EQ(received, 1u); // loopback RX also completed
    // The completions arrived as in-band MSI messages, not INTx.
    EXPECT_GE(system.gic().msisReceived(), 1u);
    EXPECT_EQ(Packet::liveCount(), 0u);
}

TEST(Msi, InBandLatencyScalesWithRcLatencyUnlikeIntx)
{
    // An MSI crosses the link and root complex like any TLP, so its
    // delivery cost grows with the RC latency; the INTx wire is
    // out of band and does not. Measure time from sendFrame to the
    // TX-done handler across RC latencies in both modes.
    auto measure = [](bool msi, unsigned rc_ns) {
        Simulation sim;
        NicSystemConfig cfg;
        cfg.nic.allowMsi = msi;
        cfg.driver.preferMsi = msi;
        cfg.base.rcLatency = nanoseconds(rc_ns);
        NicSystem system(sim, cfg);
        system.boot();
        Tick start = sim.curTick();
        Tick done_at = 0;
        system.driver().sendFrame(64, [&] {
            done_at = sim.curTick();
        });
        sim.run();
        EXPECT_NE(done_at, 0u);
        return done_at - start;
    };

    Tick msi_slow = measure(true, 300);
    Tick msi_fast = measure(true, 50);
    EXPECT_GT(msi_slow, msi_fast);

    // Both modes complete; MSI pays the fabric crossing.
    Tick intx = measure(false, 150);
    Tick msi = measure(true, 150);
    EXPECT_GT(intx, 0u);
    EXPECT_GT(msi, 0u);
}
