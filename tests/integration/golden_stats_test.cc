/**
 * @file
 * Golden-stats regression suite: canonical scenarios (the Table II
 * MMIO shape, the Fig. 9a dd shape, and a seeded fault run) dump
 * their full statistics registry and diff it against blessed files
 * in tests/golden/. Any behavioural drift — a latency change, an
 * extra replay, a reordered DLLP — shows up as a one-line diff.
 *
 * Re-bless after an intentional change with scripts/regen_golden.sh
 * (or PCIESIM_REGEN_GOLDEN=1 ctest -R golden_stats_test).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "topo/nic_system.hh"
#include "topo/storage_system.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

std::string
goldenDir()
{
#ifdef PCIESIM_GOLDEN_DIR
    return PCIESIM_GOLDEN_DIR;
#else
    return "tests/golden";
#endif
}

bool
regenMode()
{
    const char *env = std::getenv("PCIESIM_REGEN_GOLDEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/** First line where @p a and @p b differ, for a readable failure. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    unsigned line = 0;
    while (true) {
        ++line;
        bool ga = static_cast<bool>(std::getline(sa, la));
        bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return "(identical?)";
        if (!ga || !gb || la != lb) {
            std::ostringstream os;
            os << "line " << line << ":\n  golden: "
               << (ga ? la : "<eof>") << "\n  actual: "
               << (gb ? lb : "<eof>");
            return os.str();
        }
    }
}

void
checkGolden(const std::string &name, const std::string &actual)
{
    const std::string path = goldenDir() + "/" + name + ".txt";
    if (regenMode()) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " — bless it with scripts/regen_golden.sh";
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string expected = ss.str();
    EXPECT_EQ(expected, actual)
        << "stats drifted from " << path << "\nfirst diff at "
        << firstDiff(expected, actual)
        << "\nIf the change is intentional, re-bless with "
        << "scripts/regen_golden.sh";
}

std::string
formatDouble(const char *label, double v)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "# %s: %.6f\n", label, v);
    return buf;
}

} // namespace

TEST(GoldenStats, Fig9aDdShape)
{
    // The Fig. 9a topology: default Gen2 fabric, 1 MiB dd.
    Simulation sim;
    SystemConfig cfg;
    StorageSystem system(sim, cfg);
    DdWorkloadParams dd;
    dd.blockBytes = 1 << 20;
    double gbps = system.runDd(dd);

    std::ostringstream os;
    os << "# scenario: fig9a dd 1 MiB, default Gen2 topology\n";
    os << formatDouble("goodput_gbps", gbps);
    sim.statsRegistry().dump(os);
    checkGolden("fig9a_dd_1mb", os.str());
}

TEST(GoldenStats, Table2MmioShape)
{
    // The Table II midpoint: NIC on a root port, rcLatency 100 ns.
    Simulation sim;
    NicSystemConfig cfg;
    cfg.base.rcLatency = nanoseconds(100);
    NicSystem system(sim, cfg);
    Tick t = system.measureMmioReadLatency(32);

    std::ostringstream os;
    os << "# scenario: table2 MMIO read, rcLatency=100ns, 32 iters\n";
    os << formatDouble("mmio_read_ns", ticksToNs(t));
    sim.statsRegistry().dump(os);
    checkGolden("table2_mmio_rc100", os.str());
}

TEST(GoldenStats, SeededFaultShape)
{
    // A seeded bit-error run locks the whole recovery pipeline:
    // LCRC drops, NAKs, replays, and their latency footprint.
    Simulation sim;
    SystemConfig cfg;
    cfg.linkBitErrorRate = 1e-6;
    cfg.faultSeed = 7;
    StorageSystem system(sim, cfg);
    DdWorkloadParams dd;
    dd.blockBytes = 256 * 1024;
    double gbps = system.runDd(dd);

    std::ostringstream os;
    os << "# scenario: seeded faults, BER 1e-6 seed 7, dd 256 KiB\n";
    os << formatDouble("goodput_gbps", gbps);
    os << formatDouble("replay_fraction",
                       system.diskUplinkReplayFraction());
    sim.statsRegistry().dump(os);
    checkGolden("faults_ber1e6_seed7", os.str());
}

TEST(GoldenStats, UnplugAndRecoverShape)
{
    // The DESIGN.md §12 containment pipeline end to end: the disk
    // vanishes at the 8th DMA chunk, ERR_FATAL rides AER to the
    // root, the switch contains the port, the kernel FLRs the
    // returned function, and the driver re-issues the lost command.
    // Locks the AER/containment/recovery counters and the recovery
    // latency footprint.
    Simulation sim;
    SystemConfig cfg;
    cfg.aerEnabled = true;
    cfg.unplugAtChunk = 8;
    StorageSystem system(sim, cfg);
    DdWorkloadParams dd;
    dd.blockBytes = 1 << 20;
    double gbps = system.runDd(dd);

    std::ostringstream os;
    os << "# scenario: surprise unplug at chunk 8, AER recovery, "
          "dd 1 MiB\n";
    os << formatDouble("goodput_gbps", gbps);
    sim.statsRegistry().dump(os);
    checkGolden("unplug_recover_chunk8", os.str());
}
