/**
 * @file
 * Telemetry determinism gate (ISSUE 10, satellite 3): with the
 * per-domain flight recorder fully enabled — profiler on, times
 * suppressed — the 256-endpoint fanout256.json fabric must still
 * produce a byte-identical stats.json for 1 and 4 worker threads.
 *
 * This is the strongest form of the observability contract
 * (DESIGN.md §14): every registered telemetry quantity (events per
 * domain, window classification, mailbox matrix, fabric roll-up) is
 * a pure function of simulated history, and every wall-derived
 * Formula reads 0 when times are suppressed, so turning the
 * recorder on cannot perturb the 1-vs-N identity the parallel
 * engine promises. A dump that diverges here means a counter was
 * written from a thread-shape-dependent context.
 *
 * Rides tier2 with the other full-fabric gates (two 256-generator
 * runs).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "sim/parallel.hh"
#include "sim/profiler.hh"
#include "topo/fabric_builder.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

std::string
topologyDir()
{
#ifdef PCIESIM_TOPOLOGY_DIR
    return PCIESIM_TOPOLOGY_DIR;
#else
    return "examples/topologies";
#endif
}

/** Restore the process-global profiler switches on scope exit —
 *  gtest shares the process across suites. */
struct ProfGuard
{
    ProfGuard(bool enable, bool times)
    {
        prof::setEnabled(enable);
        prof::setReportTimes(times);
    }
    ~ProfGuard()
    {
        prof::setEnabled(false);
        prof::setReportTimes(true);
    }
};

struct FanoutRun
{
    std::string json;
    std::uint64_t windows = 0;
    std::uint64_t events = 0;
};

/** Run fanout256 with @p threads workers, telemetry recording on,
 *  and return the stats.json dump plus engine totals. */
FanoutRun
runFanout(unsigned threads)
{
    // The profiler is process-global and cumulative; each run must
    // start from a clean slate or the second dump carries the
    // first run's event counts.
    prof::reset();
    FabricDesc desc =
        loadFabricDesc(topologyDir() + "/fanout256.json");
    desc.config.threads = threads;
    desc.config.linkPropagation = 500_ns;
    desc.config.ackImmediate = true;
    desc.config.replayTimeoutScale = 100.0;
    Simulation sim;
    Fabric fabric(sim, desc);
    fabric.runDirectWrites(2, 4096);

    FanoutRun r;
    if (ParallelEngine *eng = sim.engine()) {
        r.windows = eng->windowsSynced();
        for (unsigned d = 0; d < eng->numDomains(); ++d)
            r.events += eng->domainEvents(d);
    }
    std::ostringstream os;
    sim.statsRegistry().dumpJson(os, sim.curTick());
    r.json = os.str();
    return r;
}

/** First differing line, for a readable failure message. */
void
expectIdentical(const std::string &a, const std::string &b)
{
    if (a == b)
        return;
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    unsigned line = 0;
    while (true) {
        ++line;
        bool ga = static_cast<bool>(std::getline(sa, la));
        bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga || !gb || la != lb) {
            ADD_FAILURE()
                << "telemetry dump diverged between 1 and 4 worker "
                << "threads at line " << line << ":\n  1t: "
                << (ga ? la : "<eof>") << "\n  4t: "
                << (gb ? lb : "<eof>");
            return;
        }
    }
}

TEST(ParallelTelemetryDeterminism, Fanout256OneVsFourThreads)
{
    // Profiler on (the flight recorder's wall subsample arms only
    // under --profile) but times suppressed, as every determinism
    // gate runs: wall-derived Formulas must read 0.
    ProfGuard guard(true, false);

    FanoutRun t1 = runFanout(1);
    FanoutRun t4 = runFanout(4);

    expectIdentical(t1.json, t4.json);

    // The recorder was actually on and recording, not agreeing on
    // an empty block: 273 domains stepped through real windows.
    EXPECT_GT(t1.windows, 0u);
    EXPECT_GT(t1.events, 0u);
    EXPECT_EQ(t1.windows, t4.windows);
    EXPECT_EQ(t1.events, t4.events);
    EXPECT_NE(t1.json.find("system.parallel.domainEvents"),
              std::string::npos);
    EXPECT_NE(t1.json.find("system.fabric.meanWireUtilization"),
              std::string::npos);
}

} // namespace
