/**
 * @file
 * SystemConfig knob audit (ISSUE 9, satellite 4): a knob set away
 * from its default but not consumed by the topology's shape must
 * warn instead of being silently ignored, and a knob the shape
 * does consume must stay silent.
 */

#include <gtest/gtest.h>

#include <string>

#include "topo/fabric_builder.hh"

using namespace pciesim;

namespace
{

/** Build @p desc and return everything it printed to stderr. */
std::string
buildStderr(const FabricDesc &desc)
{
    ::testing::internal::CaptureStderr();
    Simulation sim;
    Fabric fabric(sim, desc);
    return ::testing::internal::GetCapturedStderr();
}

TEST(FabricConfigAudit, UnusedKnobsWarn)
{
    FabricDesc desc;
    desc.source = "<audit>";
    // No switches and no disk: both knobs are dead weight here.
    desc.config.switchLatency = nanoseconds(100);
    desc.config.unplugAtChunk = 3;
    desc.gen.postedWrites = true;
    FabricNodeDesc gen;
    gen.name = "gen";
    gen.kind = "traffic_gen";
    desc.nodes.push_back(gen);

    std::string err = buildStderr(desc);
    EXPECT_NE(err.find("config knob 'switch_latency_ns' is set "
                       "but unused by this topology"),
              std::string::npos) << err;
    EXPECT_NE(err.find("config knob 'unplug_at_chunk' is set "
                       "but unused by this topology"),
              std::string::npos) << err;
}

TEST(FabricConfigAudit, ConsumedKnobsStaySilent)
{
    FabricDesc desc;
    desc.source = "<audit>";
    desc.config.switchLatency = nanoseconds(100);
    desc.config.unplugAtChunk = 3;
    FabricNodeDesc sw;
    sw.name = "switch";
    sw.kind = "switch";
    desc.nodes.push_back(sw);
    FabricNodeDesc disk;
    disk.name = "disk";
    disk.kind = "ide_disk";
    disk.parent = "switch";
    desc.nodes.push_back(disk);

    std::string err = buildStderr(desc);
    EXPECT_EQ(err.find("is set but unused"), std::string::npos)
        << err;
}

TEST(FabricConfigAudit, LegacyIoIgnoresPcieKnobs)
{
    FabricDesc desc;
    desc.source = "<audit>";
    desc.style = "legacy-io";
    desc.config.rcLatency = nanoseconds(500);
    desc.config.aerEnabled = true;
    FabricNodeDesc disk;
    disk.name = "disk";
    disk.kind = "ide_disk";
    desc.nodes.push_back(disk);

    std::string err = buildStderr(desc);
    EXPECT_NE(err.find("config knob 'rc_latency_ns' is set but "
                       "unused by this topology"),
              std::string::npos) << err;
    EXPECT_NE(err.find("config knob 'aer_enabled' is set but "
                       "unused by this topology"),
              std::string::npos) << err;
}

} // namespace
