/**
 * @file
 * Large-fabric determinism gate (ISSUE 9, satellite 3): the
 * 256-endpoint fanout256.json fabric — 17 switches, 273 link
 * domains — must produce a byte-identical statistics dump for
 * every worker-thread count once partitioned. This is the
 * builder's headline contract: per-link domains wired by the
 * declarative path obey the same parallel-determinism rules as
 * the hand-built topologies (DESIGN.md Sec. 10).
 *
 * Two notes on the shape of the assertion:
 *  - threads=1 vs threads=4, not threads=0 vs threads=4. Per
 *    SystemConfig::threads, 0 selects the legacy single-queue
 *    scheduler whose same-tick tie order (and modeled interrupt
 *    latency) legitimately differs from the partitioned engine;
 *    the engine's promise — asserted by every existing gate, and
 *    here — is identity across all counts >= 1.
 *  - The link propagation is raised to 500 ns (as in the tier-1
 *    parallel_determinism_test) so the synchronization quantum is
 *    coarse enough to step 273 domains through the run in seconds;
 *    the default 5 ns lookahead needs millions of windows and
 *    exists to be measured by bench_fabric, not asserted on.
 *
 * Runs a 256-generator DMA workload twice, so it rides tier2 with
 * the bench smokes.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "topo/fabric_builder.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

std::string
topologyDir()
{
#ifdef PCIESIM_TOPOLOGY_DIR
    return PCIESIM_TOPOLOGY_DIR;
#else
    return "examples/topologies";
#endif
}

/** Run fanout256 with @p threads workers; return gbps + dump. */
std::pair<double, std::string>
runFanout(unsigned threads)
{
    FabricDesc desc =
        loadFabricDesc(topologyDir() + "/fanout256.json");
    desc.config.threads = threads;
    desc.config.linkPropagation = 500_ns;
    desc.config.ackImmediate = true;
    desc.config.replayTimeoutScale = 100.0;
    Simulation sim;
    Fabric fabric(sim, desc);
    double gbps = fabric.runDirectWrites(2, 4096);
    std::ostringstream os;
    sim.statsRegistry().dump(os);
    return {gbps, os.str()};
}

/** First differing line, for a readable failure message
 *  (EXPECT_EQ's own diff is quadratic on dumps this size). */
void
expectIdentical(const std::string &a, const std::string &b)
{
    if (a == b)
        return;
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    unsigned line = 0;
    while (true) {
        ++line;
        bool ga = static_cast<bool>(std::getline(sa, la));
        bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga || !gb || la != lb) {
            ADD_FAILURE()
                << "stats diverged between 1 and 4 worker threads "
                << "at line " << line << ":\n  1t: "
                << (ga ? la : "<eof>") << "\n  4t: "
                << (gb ? lb : "<eof>");
            return;
        }
    }
}

TEST(FabricParallelDeterminism, Fanout256OneVsFourThreads)
{
    auto [gbps_1t, dump_1t] = runFanout(1);
    auto [gbps_4t, dump_4t] = runFanout(4);

    EXPECT_EQ(gbps_1t, gbps_4t);
    expectIdentical(dump_1t, dump_4t);
    // The dump must actually cover the fabric (not an empty
    // registry agreeing with another empty registry).
    EXPECT_NE(dump_1t.find("system.tgen255"), std::string::npos);
}

} // namespace
