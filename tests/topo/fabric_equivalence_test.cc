/**
 * @file
 * Builder equivalence suite (ISSUE 9, satellite 2): each JSON
 * example under examples/topologies/ must be behaviorally
 * indistinguishable from the C++ topology class it mirrors. Both
 * sides run the same fixed workload on the same seed and their
 * full statistics dumps are compared byte for byte — any drift in
 * naming, wiring, construction order, or timing shows up as a
 * one-line diff.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "topo/baseline_system.hh"
#include "topo/fabric_builder.hh"
#include "topo/multi_device_system.hh"
#include "topo/nic_system.hh"
#include "topo/storage_system.hh"

using namespace pciesim;

namespace
{

std::string
topologyDir()
{
#ifdef PCIESIM_TOPOLOGY_DIR
    return PCIESIM_TOPOLOGY_DIR;
#else
    return "examples/topologies";
#endif
}

std::string
dumpStats(Simulation &sim)
{
    std::ostringstream os;
    sim.statsRegistry().dump(os);
    return os.str();
}

/** First differing line, for a readable failure message. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    unsigned line = 0;
    while (true) {
        ++line;
        bool ga = static_cast<bool>(std::getline(sa, la));
        bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return "(identical?)";
        if (!ga || !gb || la != lb) {
            std::ostringstream os;
            os << "line " << line << ":\n  legacy: "
               << (ga ? la : "<eof>") << "\n  json:   "
               << (gb ? lb : "<eof>");
            return os.str();
        }
    }
}

void
expectIdentical(const std::string &legacy, const std::string &json,
                const std::string &what)
{
    EXPECT_EQ(legacy, json)
        << what << " diverged from its JSON form\nfirst diff at "
        << firstDiff(legacy, json);
}

TEST(FabricEquivalence, StorageJsonMatchesStorageSystem)
{
    DdWorkloadParams dd;
    dd.blockBytes = 256 * 1024;

    Simulation sim_a;
    StorageSystem legacy(sim_a, SystemConfig{});
    double gbps_a = legacy.runDd(dd);

    Simulation sim_b;
    Fabric fabric(sim_b,
                  loadFabricDesc(topologyDir() + "/storage.json"));
    double gbps_b = fabric.runDd(dd);

    EXPECT_EQ(gbps_a, gbps_b);
    expectIdentical(dumpStats(sim_a), dumpStats(sim_b),
                    "StorageSystem");
}

TEST(FabricEquivalence, BaselineJsonMatchesBaselineSystem)
{
    DdWorkloadParams dd;
    dd.blockBytes = 256 * 1024;

    Simulation sim_a;
    BaselineSystem legacy(sim_a, SystemConfig{});
    double gbps_a = legacy.runDd(dd);

    Simulation sim_b;
    Fabric fabric(sim_b,
                  loadFabricDesc(topologyDir() + "/baseline.json"));
    double gbps_b = fabric.runDd(dd);

    EXPECT_EQ(gbps_a, gbps_b);
    expectIdentical(dumpStats(sim_a), dumpStats(sim_b),
                    "BaselineSystem");
}

TEST(FabricEquivalence, NicJsonMatchesNicSystem)
{
    // nic.json declares the two-NIC wire-connected variant.
    NicSystemConfig cfg;
    cfg.twoNics = true;

    Simulation sim_a;
    NicSystem legacy(sim_a, cfg);
    Tick lat_a = legacy.measureMmioReadLatency(32);

    Simulation sim_b;
    Fabric fabric(sim_b,
                  loadFabricDesc(topologyDir() + "/nic.json"));
    Tick lat_b = fabric.measureMmioReadLatency(32);

    EXPECT_EQ(lat_a, lat_b);
    expectIdentical(dumpStats(sim_a), dumpStats(sim_b),
                    "NicSystem");
}

TEST(FabricEquivalence, MultiDeviceJsonMatchesMultiDeviceSystem)
{
    Simulation sim_a;
    MultiDeviceSystem legacy(sim_a, MultiDeviceConfig{});
    double gbps_a = legacy.runConcurrentWrites(4, 4, 16384);

    Simulation sim_b;
    Fabric fabric(
        sim_b, loadFabricDesc(topologyDir() + "/multi_device.json"));
    double gbps_b = fabric.runConcurrentWrites(4, 4, 16384);

    EXPECT_EQ(gbps_a, gbps_b);
    expectIdentical(dumpStats(sim_a), dumpStats(sim_b),
                    "MultiDeviceSystem");
}

// The remaining examples have no legacy counterpart; they must at
// least load, build, and run their natural workload.
TEST(FabricEquivalence, Tree3LoadsAndRuns)
{
    Simulation sim;
    Fabric fabric(sim,
                  loadFabricDesc(topologyDir() + "/tree3.json"));
    EXPECT_EQ(fabric.numSwitches(), 3u);
    EXPECT_EQ(fabric.numTrafficGens(), 4u);
    fabric.boot();
    double gbps = fabric.runDirectWrites(2, 4096);
    EXPECT_GT(gbps, 0.0);
}

TEST(FabricEquivalence, Fanout256LoadsAndRuns)
{
    Simulation sim;
    FabricDesc desc =
        loadFabricDesc(topologyDir() + "/fanout256.json");
    EXPECT_FALSE(desc.enumerate);
    Fabric fabric(sim, desc);
    EXPECT_EQ(fabric.numSwitches(), 17u);
    EXPECT_EQ(fabric.numTrafficGens(), 256u);
    double gbps = fabric.runDirectWrites(1, 4096);
    EXPECT_GT(gbps, 0.0);
}

} // namespace
