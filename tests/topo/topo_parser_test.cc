/**
 * @file
 * Error-path suite for the declarative topology pipeline: every
 * malformed document — JSON syntax errors, unknown keys, duplicate
 * names, out-of-range values, unresolvable parents — must die with
 * a fatal() citing the source file and the offending line, never a
 * silent default or a crash deeper in the builder (ISSUE 9,
 * satellite 1).
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "sim/logging.hh"
#include "topo/fabric_builder.hh"
#include "topo/topo_parser.hh"

using namespace pciesim;

namespace
{

/**
 * Run @p fn with fatal() rethrowing and return the message it died
 * with ("<no fatal>" if it survived — asserted against below).
 */
std::string
fatalMsg(const std::function<void()> &fn)
{
    setLoggingThrows(true);
    std::string msg = "<no fatal>";
    try {
        fn();
    } catch (const FatalError &e) {
        msg = e.what();
    }
    setLoggingThrows(false);
    return msg;
}

/** Fatal message from parsing @p text as bare JSON. */
std::string
parseMsg(const std::string &text)
{
    return fatalMsg([&] { topo::parseJson(text, "t.json"); });
}

/** Fatal message from parsing @p text into a FabricDesc. */
std::string
descMsg(const std::string &text)
{
    return fatalMsg([&] {
        parseFabricDesc(topo::parseJson(text, "t.json"), "t.json");
    });
}

/**
 * Fatal message from building a Fabric out of @p text. Semantic
 * checks (duplicate names, parent resolution, bus budget) run in
 * Fabric::validate(), before any simulation object exists.
 */
std::string
buildMsg(const std::string &text)
{
    return fatalMsg([&] {
        FabricDesc desc = parseFabricDesc(
            topo::parseJson(text, "t.json"), "t.json");
        Simulation sim;
        Fabric fabric(sim, desc);
    });
}

// ---------------------------------------------------------------
// JSON syntax errors: cite t.json:<line> of the failure point.
// ---------------------------------------------------------------

TEST(TopoParser, UnexpectedEndOfInput)
{
    std::string msg = parseMsg("{ \"nodes\": [");
    EXPECT_NE(msg.find("topology t.json:1:"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("unexpected end of input"),
              std::string::npos) << msg;
}

TEST(TopoParser, TrailingCharacters)
{
    std::string msg = parseMsg("{}\nxyz");
    EXPECT_NE(msg.find("topology t.json:2:"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("trailing characters"), std::string::npos)
        << msg;
}

TEST(TopoParser, DuplicateKeyWithLine)
{
    std::string msg = parseMsg("{\n"
                               " \"style\": \"pcie\",\n"
                               " \"style\": \"pcie\"\n"
                               "}");
    EXPECT_NE(msg.find("topology t.json:3:"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("duplicate key 'style'"), std::string::npos)
        << msg;
}

TEST(TopoParser, UnterminatedString)
{
    std::string msg = parseMsg("{\n \"style\": \"pc");
    EXPECT_NE(msg.find("topology t.json:2:"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("unterminated string"), std::string::npos)
        << msg;
}

TEST(TopoParser, UnsupportedEscape)
{
    std::string msg = parseMsg("{ \"style\": \"a\\x\" }");
    EXPECT_NE(msg.find("string escape"), std::string::npos) << msg;
}

TEST(TopoParser, BadNumberFraction)
{
    std::string msg =
        parseMsg("{ \"config\": { \"rc_latency_ns\": 1. } }");
    EXPECT_NE(msg.find("bad number"), std::string::npos) << msg;
}

TEST(TopoParser, LinesSurviveParsing)
{
    topo::Json doc = topo::parseJson("{\n \"nodes\": [\n  {}\n ]\n}",
                                     "t.json");
    ASSERT_NE(doc.find("nodes"), nullptr);
    EXPECT_EQ(doc.find("nodes")->line, 2u);
    ASSERT_EQ(doc.find("nodes")->arr.size(), 1u);
    EXPECT_EQ(doc.find("nodes")->arr[0].line, 3u);
}

// ---------------------------------------------------------------
// Description-level errors: unknown keys are never ignored.
// ---------------------------------------------------------------

TEST(TopoDesc, DocumentMustBeObject)
{
    EXPECT_NE(descMsg("[]").find("document must be an object"),
              std::string::npos);
}

TEST(TopoDesc, UnknownTopLevelKey)
{
    std::string msg = descMsg("{\n \"stile\": \"pcie\"\n}");
    EXPECT_NE(msg.find("topology t.json:2:"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("unknown key 'stile'"), std::string::npos)
        << msg;
}

TEST(TopoDesc, UnknownConfigKey)
{
    std::string msg =
        descMsg("{\n \"config\": {\n  \"genn\": 3\n }\n}");
    EXPECT_NE(msg.find("topology t.json:3:"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("unknown config key 'genn'"),
              std::string::npos) << msg;
}

TEST(TopoDesc, UnknownNodeKey)
{
    std::string msg = descMsg(
        "{\n \"nodes\": [\n"
        "  { \"name\": \"s\", \"kind\": \"switch\",\n"
        "    \"portz\": 4 }\n ]\n}");
    EXPECT_NE(msg.find("topology t.json:4:"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("unknown node key 'portz'"),
              std::string::npos) << msg;
}

TEST(TopoDesc, UnknownLinkKey)
{
    std::string msg = descMsg(
        "{ \"nodes\": [ { \"name\": \"s\", \"kind\": \"switch\","
        " \"link\": { \"lanes\": 4 } } ] }");
    EXPECT_NE(msg.find("unknown link key 'lanes'"),
              std::string::npos) << msg;
}

TEST(TopoDesc, UnknownTrafficGenKey)
{
    std::string msg =
        descMsg("{ \"traffic_gen\": { \"burst\": 1 } }");
    EXPECT_NE(msg.find("unknown traffic_gen key 'burst'"),
              std::string::npos) << msg;
}

TEST(TopoDesc, BadStyle)
{
    std::string msg = descMsg("{ \"style\": \"flat\" }");
    EXPECT_NE(msg.find("style must be \"pcie\" or \"legacy-io\""),
              std::string::npos) << msg;
}

TEST(TopoDesc, NodesMustBeArray)
{
    EXPECT_NE(descMsg("{ \"nodes\": 3 }")
                  .find("key 'nodes' must be an array"),
              std::string::npos);
}

TEST(TopoDesc, ConfigGenOutOfRange)
{
    std::string msg = descMsg("{ \"config\": { \"gen\": 6 } }");
    EXPECT_NE(msg.find("config gen must be 1..5"),
              std::string::npos) << msg;
}

TEST(TopoDesc, NodeCountZero)
{
    std::string msg = descMsg(
        "{ \"nodes\": [ { \"name\": \"g\","
        " \"kind\": \"traffic_gen\", \"count\": 0 } ] }");
    EXPECT_NE(msg.find("node count must be >= 1"),
              std::string::npos) << msg;
}

TEST(TopoDesc, NodeMissingName)
{
    std::string msg =
        descMsg("{ \"nodes\": [ { \"kind\": \"switch\" } ] }");
    EXPECT_NE(msg.find("node is missing a 'name'"),
              std::string::npos) << msg;
}

TEST(TopoDesc, NodeMissingKind)
{
    std::string msg =
        descMsg("{ \"nodes\": [ { \"name\": \"s\" } ] }");
    EXPECT_NE(msg.find("node is missing a 'kind'"),
              std::string::npos) << msg;
}

TEST(TopoDesc, TypeMismatch)
{
    std::string msg = descMsg("{ \"enumerate\": 1 }");
    EXPECT_NE(msg.find("key 'enumerate' must be a bool"),
              std::string::npos) << msg;
}

// Count expansion is the one non-trivial rewrite the parser does;
// pin its naming and round-robin parent distribution.
TEST(TopoDesc, CountExpansionRoundRobin)
{
    FabricDesc desc = parseFabricDesc(
        topo::parseJson(
            "{ \"nodes\": ["
            " { \"name\": \"sw\", \"kind\": \"switch\","
            "   \"count\": 2, \"ports\": 2 },"
            " { \"name\": \"g\", \"kind\": \"traffic_gen\","
            "   \"count\": 4, \"parent\": \"sw\" } ] }",
            "t.json"),
        "t.json");
    ASSERT_EQ(desc.nodes.size(), 6u);
    EXPECT_EQ(desc.nodes[0].name, "sw0");
    EXPECT_EQ(desc.nodes[1].name, "sw1");
    EXPECT_EQ(desc.nodes[2].name, "g0");
    EXPECT_EQ(desc.nodes[2].parent, "sw0");
    EXPECT_EQ(desc.nodes[3].parent, "sw1");
    EXPECT_EQ(desc.nodes[4].parent, "sw0");
    EXPECT_EQ(desc.nodes[5].parent, "sw1");
}

// ---------------------------------------------------------------
// Builder-level semantic errors (Fabric::validate()).
// ---------------------------------------------------------------

TEST(TopoValidate, ReservedRcName)
{
    std::string msg = buildMsg(
        "{ \"nodes\": [ { \"name\": \"rc\","
        " \"kind\": \"switch\" } ] }");
    EXPECT_NE(msg.find("'rc' is reserved"), std::string::npos)
        << msg;
}

TEST(TopoValidate, DuplicateDeviceNameCitesSecondLine)
{
    std::string msg = buildMsg(
        "{\n \"nodes\": [\n"
        "  { \"name\": \"a\", \"kind\": \"traffic_gen\" },\n"
        "  { \"name\": \"a\", \"kind\": \"traffic_gen\" }\n"
        " ]\n}");
    EXPECT_NE(msg.find("topology t.json:4:"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("duplicate device name 'a'"),
              std::string::npos) << msg;
}

TEST(TopoValidate, UnknownKind)
{
    std::string msg = buildMsg(
        "{ \"nodes\": [ { \"name\": \"x\","
        " \"kind\": \"gpu\" } ] }");
    EXPECT_NE(msg.find("unknown device kind 'gpu'"),
              std::string::npos) << msg;
}

TEST(TopoValidate, LinkGenOutOfRange)
{
    std::string msg = buildMsg(
        "{ \"nodes\": [ { \"name\": \"g\","
        " \"kind\": \"traffic_gen\","
        " \"link\": { \"gen\": 9 } } ] }");
    EXPECT_NE(msg.find("link gen must be 1..5"), std::string::npos)
        << msg;
}

TEST(TopoValidate, LinkWidthOutOfRange)
{
    std::string msg = buildMsg(
        "{ \"nodes\": [ { \"name\": \"g\","
        " \"kind\": \"traffic_gen\","
        " \"link\": { \"width\": 64 } } ] }");
    EXPECT_NE(msg.find("link width must be 1..32 lanes"),
              std::string::npos) << msg;
}

TEST(TopoValidate, LinkBerOutOfRange)
{
    std::string msg = buildMsg(
        "{\n \"nodes\": [\n"
        "  { \"name\": \"g\", \"kind\": \"traffic_gen\",\n"
        "    \"link\": { \"bit_error_rate\": 1.5 } }\n ]\n}");
    EXPECT_NE(msg.find("topology t.json:3:"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("link bit error rate must be in [0, 1)"),
              std::string::npos) << msg;
}

TEST(TopoValidate, ConfigBerOutOfRange)
{
    std::string msg = buildMsg(
        "{ \"config\": { \"link_bit_error_rate\": 1.0 },"
        " \"nodes\": [ { \"name\": \"g\","
        " \"kind\": \"traffic_gen\" } ] }");
    EXPECT_NE(
        msg.find("config link_bit_error_rate must be in [0, 1)"),
        std::string::npos) << msg;
}

TEST(TopoValidate, SwitchPortsOutOfRange)
{
    std::string msg = buildMsg(
        "{ \"nodes\": [ { \"name\": \"s\","
        " \"kind\": \"switch\", \"ports\": 17 } ] }");
    EXPECT_NE(msg.find("switch ports must be 1..16"),
              std::string::npos) << msg;
}

TEST(TopoValidate, UnknownParentForwardReference)
{
    // Parents must be declared before children; a forward (or
    // cyclic) reference is unresolvable by construction.
    std::string msg = buildMsg(
        "{\n \"nodes\": [\n"
        "  { \"name\": \"g\", \"kind\": \"traffic_gen\",\n"
        "    \"parent\": \"s\" },\n"
        "  { \"name\": \"s\", \"kind\": \"switch\" }\n ]\n}");
    EXPECT_NE(msg.find("topology t.json:3:"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("unknown parent 's'"), std::string::npos)
        << msg;
}

TEST(TopoValidate, SelfParentIsUnresolvable)
{
    std::string msg = buildMsg(
        "{ \"nodes\": [ { \"name\": \"s\","
        " \"kind\": \"switch\", \"parent\": \"s\" } ] }");
    EXPECT_NE(msg.find("unknown parent 's'"), std::string::npos)
        << msg;
}

TEST(TopoValidate, ParentMustBeSwitch)
{
    std::string msg = buildMsg(
        "{ \"nodes\": ["
        " { \"name\": \"d\", \"kind\": \"ide_disk\" },"
        " { \"name\": \"g\", \"kind\": \"traffic_gen\","
        "   \"parent\": \"d\" } ] }");
    EXPECT_NE(msg.find("parent 'd'"), std::string::npos) << msg;
}

TEST(TopoValidate, SwitchOverCommitted)
{
    std::string msg = buildMsg(
        "{ \"nodes\": ["
        " { \"name\": \"s\", \"kind\": \"switch\","
        "   \"ports\": 1 },"
        " { \"name\": \"g\", \"kind\": \"traffic_gen\","
        "   \"count\": 2, \"parent\": \"s\" } ] }");
    EXPECT_NE(msg.find("more children than its 1 downstream"),
              std::string::npos) << msg;
}

TEST(TopoValidate, TooManyRootPorts)
{
    std::string msg = buildMsg(
        "{ \"nodes\": [ { \"name\": \"g\","
        " \"kind\": \"traffic_gen\", \"count\": 9 } ] }");
    EXPECT_NE(msg.find("at most 8 root ports"), std::string::npos)
        << msg;
}

TEST(TopoValidate, DuplicateLinkName)
{
    std::string msg = buildMsg(
        "{ \"nodes\": ["
        " { \"name\": \"a\", \"kind\": \"traffic_gen\","
        "   \"link\": { \"name\": \"L\" } },"
        " { \"name\": \"b\", \"kind\": \"traffic_gen\","
        "   \"link\": { \"name\": \"L\" } } ] }");
    EXPECT_NE(msg.find("duplicate link name 'L'"),
              std::string::npos) << msg;
}

TEST(TopoValidate, WireConnectsAtMostTwoNics)
{
    std::string msg = buildMsg(
        "{ \"nodes\": [ { \"name\": \"n\","
        " \"kind\": \"nic\", \"count\": 3 } ] }");
    EXPECT_NE(msg.find("more than two NICs"), std::string::npos)
        << msg;
}

TEST(TopoValidate, LegacyIoWantsExactlyOneDisk)
{
    std::string msg = buildMsg(
        "{ \"style\": \"legacy-io\","
        " \"nodes\": [ { \"name\": \"s\","
        " \"kind\": \"switch\" } ] }");
    EXPECT_NE(msg.find("legacy-io style supports exactly one "
                       "ide_disk node"),
              std::string::npos) << msg;
}

TEST(TopoValidate, NonEnumeratedRejectsDisks)
{
    std::string msg = buildMsg(
        "{ \"enumerate\": false,"
        " \"nodes\": [ { \"name\": \"d\","
        " \"kind\": \"ide_disk\" } ] }");
    EXPECT_NE(msg.find("only switch and traffic_gen"),
              std::string::npos) << msg;
}

TEST(TopoValidate, NonEnumeratedRequiresPostedWrites)
{
    std::string msg = buildMsg(
        "{ \"enumerate\": false,"
        " \"nodes\": [ { \"name\": \"g\","
        " \"kind\": \"traffic_gen\" } ] }");
    EXPECT_NE(msg.find("require posted_writes"), std::string::npos)
        << msg;
}

TEST(TopoValidate, NonEnumeratedRejectsAer)
{
    std::string msg = buildMsg(
        "{ \"enumerate\": false,"
        " \"config\": { \"aer_enabled\": true },"
        " \"traffic_gen\": { \"posted_writes\": true },"
        " \"nodes\": [ { \"name\": \"g\","
        " \"kind\": \"traffic_gen\" } ] }");
    EXPECT_NE(msg.find("AER requires an enumerable fabric"),
              std::string::npos) << msg;
}

TEST(TopoValidate, BusBudgetOverflow)
{
    // 8 root switches x 16 ports: 8 + 8*17 = 144 bridges under the
    // roots... push past 255 with a second level. 4 roots, each
    // with 4 switch children of 16 ports: 4 + 4*5 + 16*17 = 296.
    std::string msg = buildMsg(
        "{ \"nodes\": ["
        " { \"name\": \"top\", \"kind\": \"switch\","
        "   \"count\": 4, \"ports\": 4 },"
        " { \"name\": \"mid\", \"kind\": \"switch\","
        "   \"count\": 16, \"ports\": 16, \"parent\": \"top\" },"
        " { \"name\": \"g\", \"kind\": \"traffic_gen\","
        "   \"count\": 16, \"parent\": \"mid\" } ] }");
    EXPECT_NE(msg.find("more than 255 buses"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("\"enumerate\": false"), std::string::npos)
        << msg;
}

TEST(TopoValidate, FileErrorsCiteTheFilename)
{
    std::string msg = fatalMsg(
        [] { loadFabricDesc("/nonexistent/topo.json"); });
    EXPECT_NE(msg.find("/nonexistent/topo.json"),
              std::string::npos) << msg;
    EXPECT_NE(msg.find("cannot open file"), std::string::npos)
        << msg;
}

} // namespace
