/**
 * @file
 * Unit tests for the PCI-Express link model: serialization timing,
 * the ACK/NAK protocol, replay-buffer throttling, and recovery from
 * refused deliveries (paper Sec. V-C, Fig. 8).
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "dev/dma_engine.hh"
#include "pcie/pcie_link.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

namespace
{

struct LinkFixture : ::testing::Test
{
    void
    build(const PcieLinkParams &params)
    {
        link = std::make_unique<PcieLink>(sim, "link", params);
        rcSrc.bind(link->upSlave());
        link->upMaster().bind(rcSink);
        link->downMaster().bind(devPio);
        devDma.bind(link->downSlave());
        sim.initialize();
    }

    Simulation sim;
    std::unique_ptr<PcieLink> link;
    RecordingMasterPort rcSrc{"rcSrc"};     //!< RC sends requests
    RecordingSlavePort rcSink{"rcSink",     //!< RC accepts DMA
                              {AddrRange{0x80000000, 0x90000000}}};
    RecordingSlavePort devPio{"devPio",     //!< device PIO target
                              {AddrRange{0x40000000, 0x40001000}}};
    RecordingMasterPort devDma{"devDma"};   //!< device DMA engine
};

} // namespace

TEST_F(LinkFixture, DeliversRequestAfterSerializationAndPropagation)
{
    PcieLinkParams p;
    p.gen = PcieGen::Gen2;
    p.width = 1;
    p.propagationDelay = 1_ns;
    build(p);

    Tick delivered = 0;
    devPio.onRequest = [&](const PacketPtr &) {
        delivered = sim.curTick();
    };
    PacketPtr pkt = Packet::makeRequest(MemCmd::WriteReq,
                                        0x40000000, 64);
    EXPECT_TRUE(rcSrc.sendTimingReq(pkt));
    sim.run();
    ASSERT_EQ(devPio.requests.size(), 1u);
    // 84 symbols * 2 ns + 1 ns propagation.
    EXPECT_EQ(delivered, 169_ns);
}

TEST_F(LinkFixture, WiderLinkIsProportionallyFaster)
{
    PcieLinkParams p;
    p.width = 4;
    p.propagationDelay = 1_ns;
    build(p);

    Tick delivered = 0;
    devPio.onRequest = [&](const PacketPtr &) {
        delivered = sim.curTick();
    };
    rcSrc.sendTimingReq(Packet::makeRequest(MemCmd::WriteReq,
                                            0x40000000, 64));
    sim.run();
    // ceil(84/4) = 21 symbols * 2 ns + 1 ns.
    EXPECT_EQ(delivered, 43_ns);
}

TEST_F(LinkFixture, ResponseTravelsBackUpstream)
{
    PcieLinkParams p;
    build(p);
    devPio.autoRespond = true;

    PacketPtr pkt = Packet::makeRequest(MemCmd::ReadReq,
                                        0x40000000, 64);
    rcSrc.sendTimingReq(pkt);
    sim.run();
    ASSERT_EQ(rcSrc.responses.size(), 1u);
    EXPECT_EQ(rcSrc.responses[0]->cmd(), MemCmd::ReadResp);
}

TEST_F(LinkFixture, DmaRequestsTravelUpstream)
{
    PcieLinkParams p;
    build(p);
    rcSink.autoRespond = true;

    PacketPtr pkt = Packet::makeRequest(MemCmd::WriteReq,
                                        0x80000000, 64);
    EXPECT_TRUE(devDma.sendTimingReq(pkt));
    sim.run();
    ASSERT_EQ(rcSink.requests.size(), 1u);
    ASSERT_EQ(devDma.responses.size(), 1u);
}

TEST_F(LinkFixture, BurstStaysInOrder)
{
    PcieLinkParams p;
    p.replayBufferSize = 8;
    build(p);

    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_TRUE(rcSrc.sendTimingReq(Packet::makeRequest(
            MemCmd::WriteReq, 0x40000000 + 64 * i, 64)));
    }
    sim.run();
    ASSERT_EQ(devPio.requests.size(), 8u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(devPio.requests[i]->addr(), 0x40000000 + 64 * i);
}

TEST_F(LinkFixture, ReplayBufferThrottlesAcceptance)
{
    // Paper Sec. V-C: "the interfaces transmit TLPs as long as
    // their replay buffer has space".
    PcieLinkParams p;
    p.replayBufferSize = 2;
    build(p);
    devPio.refuseRequests = 1000000; // deliveries never succeed

    EXPECT_TRUE(rcSrc.sendTimingReq(Packet::makeRequest(
        MemCmd::WriteReq, 0x40000000, 64)));
    EXPECT_TRUE(rcSrc.sendTimingReq(Packet::makeRequest(
        MemCmd::WriteReq, 0x40000040, 64)));
    // Third TLP: replay buffer + tx queue hold 2 unACKed already.
    EXPECT_FALSE(rcSrc.sendTimingReq(Packet::makeRequest(
        MemCmd::WriteReq, 0x40000080, 64)));
    EXPECT_GE(link->upstreamIf().txTlps(), 0u);
}

TEST_F(LinkFixture, RefusedDeliveryRecoversThroughReplayTimeout)
{
    PcieLinkParams p;
    build(p);
    devPio.refuseRequests = 1; // refuse exactly the first delivery

    PacketPtr pkt = Packet::makeRequest(MemCmd::WriteReq,
                                        0x40000000, 64);
    rcSrc.sendTimingReq(pkt);
    sim.run();
    // The TLP was refused once, timed out, was replayed, and
    // finally delivered.
    ASSERT_EQ(devPio.requests.size(), 1u);
    EXPECT_EQ(devPio.requestsRefused, 1u);
    EXPECT_GE(link->upstreamIf().timeouts(), 1u);
    EXPECT_GE(link->upstreamIf().replayedTlps(), 1u);
    EXPECT_EQ(link->downstreamIf().deliveryRefusals(), 1u);
    // Recovery took at least one replay-timeout period.
    EXPECT_GE(sim.curTick(), link->replayTimeoutTicks());
}

TEST_F(LinkFixture, PacketBehindRefusalIsDroppedAndReplayedInOrder)
{
    PcieLinkParams p;
    p.replayBufferSize = 4;
    build(p);
    devPio.refuseRequests = 1;

    rcSrc.sendTimingReq(Packet::makeRequest(MemCmd::WriteReq,
                                            0x40000000, 64));
    rcSrc.sendTimingReq(Packet::makeRequest(MemCmd::WriteReq,
                                            0x40000040, 64));
    sim.run();
    // Both eventually arrive, in order, despite the first refusal.
    ASSERT_EQ(devPio.requests.size(), 2u);
    EXPECT_EQ(devPio.requests[0]->addr(), 0x40000000u);
    EXPECT_EQ(devPio.requests[1]->addr(), 0x40000040u);
}

TEST_F(LinkFixture, SpuriousReplayDuplicatesAreDiscarded)
{
    // A replay timeout shorter than the ACK turnaround forces
    // retransmission of already-accepted TLPs; the receiver must
    // discard the duplicates and re-ACK.
    PcieLinkParams p;
    p.replayTimeoutScale = 0.05; // timeout << ACK timer period
    p.ackImmediate = false;
    build(p);

    rcSrc.sendTimingReq(Packet::makeRequest(MemCmd::WriteReq,
                                            0x40000000, 64));
    sim.run();
    ASSERT_EQ(devPio.requests.size(), 1u); // delivered exactly once
    EXPECT_GE(link->upstreamIf().timeouts(), 1u);
    // The duplicate counter lives on the receiving side.
    auto &reg = sim.statsRegistry();
    EXPECT_GE(reg.counterValue("link.down.duplicateTlps"), 1u);
}

TEST_F(LinkFixture, AcceptanceResumesViaRetryAfterAck)
{
    PcieLinkParams p;
    p.replayBufferSize = 1;
    build(p);
    devPio.autoRespond = true;

    EXPECT_TRUE(rcSrc.sendTimingReq(Packet::makeRequest(
        MemCmd::ReadReq, 0x40000000, 4)));
    EXPECT_FALSE(rcSrc.sendTimingReq(Packet::makeRequest(
        MemCmd::ReadReq, 0x40000004, 4)));
    sim.run();
    // After the ACK frees the replay buffer, the refused sender is
    // retried per the timing protocol.
    EXPECT_GE(rcSrc.reqRetries, 1u);
}

TEST_F(LinkFixture, AckDllpsAreCounted)
{
    PcieLinkParams p;
    build(p);

    rcSrc.sendTimingReq(Packet::makeRequest(MemCmd::WriteReq,
                                            0x40000000, 64));
    sim.run();
    auto &reg = sim.statsRegistry();
    EXPECT_GE(reg.counterValue("link.down.txDllps"), 1u);
    EXPECT_GE(reg.counterValue("link.up.rxDllps"), 1u);
    EXPECT_EQ(reg.counterValue("link.up.txTlps"), 1u);
    EXPECT_EQ(reg.counterValue("link.down.rxTlps"), 1u);
}

TEST_F(LinkFixture, SlavePortRangesPassThroughTheLink)
{
    PcieLinkParams p;
    build(p);
    AddrRangeList up_ranges = link->upSlave().getAddrRanges();
    ASSERT_EQ(up_ranges.size(), 1u);
    EXPECT_EQ(up_ranges.front(),
              (AddrRange{0x40000000, 0x40001000}));
    AddrRangeList down_ranges = link->downSlave().getAddrRanges();
    ASSERT_EQ(down_ranges.size(), 1u);
    EXPECT_EQ(down_ranges.front(),
              (AddrRange{0x80000000, 0x90000000}));
}

TEST_F(LinkFixture, ImmediateAckModeStillDeliversEverything)
{
    PcieLinkParams p;
    p.ackImmediate = true;
    p.replayBufferSize = 4;
    build(p);
    devPio.autoRespond = true;

    for (unsigned i = 0; i < 16; ++i) {
        while (!rcSrc.sendTimingReq(Packet::makeRequest(
            MemCmd::ReadReq, 0x40000000 + 4 * i, 4))) {
            // Window full: let the simulation make progress.
            sim.runFor(100_ns);
        }
    }
    sim.run();
    EXPECT_EQ(devPio.requests.size(), 16u);
    EXPECT_EQ(rcSrc.responses.size(), 16u);
}

TEST_F(LinkFixture, ScriptedCorruptionRecoversViaNak)
{
    // Corrupt exactly the first TLP toward the device. The receiver
    // must NAK it and the sender must replay immediately - the
    // replay timer never fires.
    PcieLinkParams p;
    p.faults.corruptTlpNumbers = {1};
    build(p);

    rcSrc.sendTimingReq(Packet::makeRequest(MemCmd::WriteReq,
                                            0x40000000, 64));
    sim.run();
    ASSERT_EQ(devPio.requests.size(), 1u); // delivered exactly once
    EXPECT_EQ(link->downstreamIf().crcErrorsTlp(), 1u);
    EXPECT_EQ(link->downstreamIf().naksSent(), 1u);
    EXPECT_EQ(link->upstreamIf().naksReceived(), 1u);
    EXPECT_EQ(link->upstreamIf().replayedTlps(), 1u);
    EXPECT_EQ(link->upstreamIf().timeouts(), 0u);
    // NAK recovery is fast: well under one replay-timeout period.
    EXPECT_LT(sim.curTick(), link->replayTimeoutTicks());
}

TEST_F(LinkFixture, GapAfterCorruptionIsNakedOnce)
{
    // Two TLPs; the first is corrupted so the second arrives out of
    // sequence. Spec NAK_SCHEDULED semantics: one NAK covers the
    // whole loss window, and both TLPs are replayed in order.
    PcieLinkParams p;
    p.faults.corruptTlpNumbers = {1};
    p.replayBufferSize = 4;
    build(p);

    rcSrc.sendTimingReq(Packet::makeRequest(MemCmd::WriteReq,
                                            0x40000000, 64));
    rcSrc.sendTimingReq(Packet::makeRequest(MemCmd::WriteReq,
                                            0x40000040, 64));
    sim.run();
    ASSERT_EQ(devPio.requests.size(), 2u);
    EXPECT_EQ(devPio.requests[0]->addr(), 0x40000000u);
    EXPECT_EQ(devPio.requests[1]->addr(), 0x40000040u);
    EXPECT_EQ(link->downstreamIf().naksSent(), 1u);
    EXPECT_GE(link->downstreamIf().errorStats().outOfOrderDrops, 1u);
    EXPECT_EQ(link->upstreamIf().timeouts(), 0u);
}

TEST_F(LinkFixture, CorruptedAckFallsBackToReplayTimer)
{
    // Corrupt the first DLLP (the ACK travelling back upstream).
    // DLLPs are not replayed; the sender recovers via the replay
    // timer and the receiver discards the resulting duplicate.
    PcieLinkParams p;
    p.faults.corruptDllpNumbers = {1};
    build(p);

    rcSrc.sendTimingReq(Packet::makeRequest(MemCmd::WriteReq,
                                            0x40000000, 64));
    sim.run();
    ASSERT_EQ(devPio.requests.size(), 1u);
    EXPECT_EQ(link->upstreamIf().crcErrorsDllp(), 1u);
    EXPECT_GE(link->upstreamIf().timeouts(), 1u);
    auto &reg = sim.statsRegistry();
    EXPECT_GE(reg.counterValue("link.down.duplicateTlps"), 1u);
}

TEST_F(LinkFixture, PersistentCorruptionTriggersRetrain)
{
    // Everything on the wire is corrupted for a long window: the
    // same TLP is replayed over and over, REPLAY_NUM rolls over,
    // and the link retrains. When the window ends the TLP finally
    // gets through.
    PcieLinkParams p;
    p.faults.corruptWindowBegin = 0;
    p.faults.corruptWindowEnd = 2_ms;
    p.retrainLatency = 1_us;
    build(p);

    rcSrc.sendTimingReq(Packet::makeRequest(MemCmd::WriteReq,
                                            0x40000000, 64));
    sim.run();
    ASSERT_EQ(devPio.requests.size(), 1u);
    EXPECT_GE(link->errorStats().retrains, 1u);
    EXPECT_GE(link->errorStats().crcErrorsTlp,
              static_cast<std::uint64_t>(p.replayNumThreshold));
    EXPECT_GE(sim.curTick(), 2_ms);
}

TEST_F(LinkFixture, SeqWrapUnderActiveNakRecoversInOrder)
{
    // Corrupt the TLP carrying sequence number 4095 (the 4096th
    // transmission: sendSeq starts at 0). The NAK loss window then
    // straddles the 4095 -> 0 wrap, exercising seqDistance/seqLe
    // modular arithmetic under an active NAK_SCHEDULED: TLPs 0 and
    // 1 arrive out of sequence, the single NAK covers the window,
    // and the replay delivers 4095, 0, 1 in order.
    PcieLinkParams p;
    p.replayBufferSize = 4;
    p.faults.corruptTlpNumbers = {4096};
    build(p);

    constexpr unsigned total = 4100;
    for (unsigned i = 0; i < total; ++i) {
        while (!rcSrc.sendTimingReq(Packet::makeRequest(
            MemCmd::WriteReq, 0x40000000 + 8 * (i % 512), 8))) {
            sim.runFor(10_us);
        }
    }
    sim.run();

    ASSERT_EQ(devPio.requests.size(), total);
    for (unsigned i = 0; i < total; ++i) {
        ASSERT_EQ(devPio.requests[i]->addr(),
                  0x40000000 + 8 * (i % 512))
            << "out of order at TLP " << i;
    }
    EXPECT_EQ(link->downstreamIf().crcErrorsTlp(), 1u);
    EXPECT_EQ(link->downstreamIf().naksSent(), 1u);
    EXPECT_EQ(link->upstreamIf().naksReceived(), 1u);
    EXPECT_GE(link->upstreamIf().replayedTlps(), 1u);
    // NAK recovery, not the replay timer.
    EXPECT_EQ(link->upstreamIf().timeouts(), 0u);
}

TEST_F(LinkFixture, RetrainWhileReplayInFlightDeliversExactlyOnce)
{
    // Several TLPs sit in the replay buffer while the corruption
    // window outlasts REPLAY_NUM rollovers: retrains fire with a
    // replay literally in flight, repeatedly. When the window ends,
    // every TLP must still arrive exactly once and in order.
    PcieLinkParams p;
    p.replayBufferSize = 4;
    p.retrainLatency = 1_us;
    p.faults.corruptWindowBegin = 0;
    p.faults.corruptWindowEnd = 2_ms;
    build(p);

    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_TRUE(rcSrc.sendTimingReq(Packet::makeRequest(
            MemCmd::WriteReq, 0x40000000 + 64 * i, 64)));
    }
    sim.run();

    ASSERT_EQ(devPio.requests.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(devPio.requests[i]->addr(), 0x40000000 + 64 * i);
    EXPECT_GE(link->errorStats().retrains, 1u);
    EXPECT_GE(link->upstreamIf().timeouts(),
              static_cast<std::uint64_t>(p.replayNumThreshold));
    EXPECT_GE(link->upstreamIf().replayedTlps(), 4u);
    EXPECT_GE(sim.curTick(), 2_ms);
}

TEST_F(LinkFixture, FaultStatsStayZeroOnCleanLinks)
{
    PcieLinkParams p;
    p.enableNak = true; // NAK protocol on, but nothing to NAK
    build(p);
    devPio.autoRespond = true;

    for (unsigned i = 0; i < 8; ++i) {
        rcSrc.sendTimingReq(Packet::makeRequest(
            MemCmd::ReadReq, 0x40000000 + 4 * i, 4));
        sim.run();
    }
    EXPECT_EQ(devPio.requests.size(), 8u);
    LinkErrorStats s = link->errorStats();
    EXPECT_EQ(s.crcErrorsTlp, 0u);
    EXPECT_EQ(s.crcErrorsDllp, 0u);
    EXPECT_EQ(s.naksSent, 0u);
    EXPECT_EQ(s.naksReceived, 0u);
    EXPECT_EQ(s.retrains, 0u);
}

TEST(PcieLinkConfig, InvalidParamsAreFatal)
{
    setLoggingThrows(true);
    Simulation sim;
    PcieLinkParams p;
    // Width violations trip the timing formula's invariant first.
    p.width = 0;
    EXPECT_THROW(PcieLink(sim, "bad", p), PanicError);
    p.width = 64;
    EXPECT_THROW(PcieLink(sim, "bad2", p), PanicError);
    p.width = 1;
    p.replayBufferSize = 0;
    EXPECT_THROW(PcieLink(sim, "bad3", p), FatalError);
    setLoggingThrows(false);
}

TEST_F(LinkFixture, SeqWrapDuringActiveRetrainDeliversInOrder)
{
    // Corrupt every transmission in a wire-ordinal span starting at
    // the TLP that carries sequence number 4095 (the 4096th
    // transmission: sendSeq starts at 0). The head TLP's replays
    // are corrupted too, REPLAY_NUM rolls over, and the retrain
    // fires while the outstanding window straddles the 4095 -> 0
    // wrap. The post-retrain full replay must walk the buffer
    // across the wrap and deliver everything exactly once.
    PcieLinkParams p;
    p.replayBufferSize = 4;
    p.retrainLatency = 1_us;
    for (std::uint64_t n = 4096; n < 4096 + 25; ++n)
        p.faults.corruptTlpNumbers.push_back(n);
    build(p);

    constexpr unsigned total = 4100;
    for (unsigned i = 0; i < total; ++i) {
        while (!rcSrc.sendTimingReq(Packet::makeRequest(
            MemCmd::WriteReq, 0x40000000 + 8 * (i % 512), 8))) {
            sim.runFor(10_us);
        }
    }
    sim.run();

    ASSERT_EQ(devPio.requests.size(), total);
    for (unsigned i = 0; i < total; ++i) {
        ASSERT_EQ(devPio.requests[i]->addr(),
                  0x40000000 + 8 * (i % 512))
            << "out of order at TLP " << i;
    }
    // The rollover actually retrained the link at the wrap.
    EXPECT_GE(link->errorStats().retrains, 1u);
    EXPECT_GE(link->errorStats().crcErrorsTlp,
              static_cast<std::uint64_t>(p.replayNumThreshold));
    EXPECT_FALSE(link->training());
}

namespace
{

/** A device-side DMA engine harness driving the link's downstream
 *  slave, for timeout-during-retrain scenarios. */
class LinkDmaHarness : public SimObject
{
  public:
    class Port : public MasterPort
    {
      public:
        explicit Port(LinkDmaHarness &h)
            : MasterPort("dmaHarness.port"), h_(h)
        {}

        bool
        recvTimingResp(PacketPtr pkt) override
        {
            return h_.engine->recvResp(pkt);
        }

        void recvReqRetry() override { h_.engine->recvRetry(); }

      private:
        LinkDmaHarness &h_;
    };

    LinkDmaHarness(Simulation &sim, const DmaEngineParams &params)
        : SimObject(sim, "dmaHarness"), port(*this)
    {
        engine = std::make_unique<DmaEngine>(*this, port,
                                             "dmaHarness.dma",
                                             params);
    }

    Port port;
    std::unique_ptr<DmaEngine> engine;
};

} // namespace

TEST(PcieLinkTimeout, CompletionTimeoutFiresWhileLinkIsDown)
{
    // A corruption window outlasting several REPLAY_NUM rollovers
    // keeps the link retraining; the requester's completion
    // watchdog must fire *during* a link-down interval, abort the
    // transfer, and the simulation must drain cleanly (stragglers
    // replayed after the window are dropped as stale).
    Simulation sim;
    PcieLinkParams p;
    p.replayBufferSize = 8;
    p.retrainLatency = 200_us; // long downs: timeouts land inside
    p.faults.corruptWindowBegin = 0;
    p.faults.corruptWindowEnd = 2_ms;
    auto link = std::make_unique<PcieLink>(sim, "link", p);
    RecordingMasterPort rcSrc{"rcSrc"};
    RecordingSlavePort rcSink{"rcSink",
                              {AddrRange{0x80000000, 0x90000000}}};
    RecordingSlavePort devPio{"devPio",
                              {AddrRange{0x40000000, 0x40001000}}};
    rcSrc.bind(link->upSlave());
    link->upMaster().bind(rcSink);
    link->downMaster().bind(devPio);
    rcSink.autoRespond = true;

    DmaEngineParams ep;
    ep.completionTimeout = 300_us;
    LinkDmaHarness h(sim, ep);
    h.port.bind(link->downSlave());
    sim.initialize();

    bool done = false;
    bool down_at_timeout = false;
    h.engine->setTimeoutHook(
        [&] { down_at_timeout = link->training(); });
    h.engine->startRead(0x80000000, 512, [&] { done = true; });
    sim.run();

    // The watchdog aborted the transfer while the link was down.
    EXPECT_TRUE(done);
    EXPECT_EQ(h.engine->completionTimeouts(), 1u);
    EXPECT_TRUE(down_at_timeout);
    EXPECT_GE(link->errorStats().retrains, 1u);
    EXPECT_FALSE(h.engine->busy());
    EXPECT_FALSE(link->training());
    // Whatever the post-window replay delivered arrived after the
    // abort and was discarded without a protocol violation.
    EXPECT_GE(sim.curTick(), 2_ms);
}
