/**
 * @file
 * Unit tests for the root complex: VP2P registration, window-based
 * request routing, bus-number stamping and response routing
 * (paper Sec. V-A, Fig. 6).
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "pci/bridge_header.hh"
#include "pci/config_regs.hh"
#include "pcie/root_complex.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

namespace
{

struct RcFixture : ::testing::Test
{
    RcFixture() : host(sim, "host")
    {
        RootComplexParams params;
        params.numRootPorts = 3;
        params.latency = 150_ns;
        params.portBufferSize = 4;
        rc = std::make_unique<RootComplex>(sim, "rc", host, params);

        membus.bind(rc->upstreamSlavePort());
        rc->upstreamMasterPort().bind(iocache);
        for (unsigned i = 0; i < 3; ++i) {
            rc->rootPortMaster(i).bind(linkReqSink[i]);
            linkRespSrc[i].bind(rc->rootPortSlave(i));
        }
    }

    /** Program VP2P i with a memory window and bus range. */
    void
    programVp2p(unsigned i, Addr base, Addr limit, unsigned sec,
                unsigned sub)
    {
        ConfigSpace &cs = rc->vp2p(i).config();
        BridgeHeader::programBusNumbers(cs, 0, sec, sub);
        BridgeHeader::programMemWindow(cs, base, limit);
        cs.write(cfg::command, 2,
                 cfg::cmdMemEnable | cfg::cmdIoEnable |
                 cfg::cmdBusMaster);
    }

    Simulation sim;
    PciHost host;
    std::unique_ptr<RootComplex> rc;
    RecordingMasterPort membus{"membus"};
    RecordingSlavePort iocache{"iocache",
                               {AddrRange{0x80000000, 0x90000000}}};
    RecordingSlavePort linkReqSink[3] = {
        RecordingSlavePort{"link0", {}},
        RecordingSlavePort{"link1", {}},
        RecordingSlavePort{"link2", {}}};
    RecordingMasterPort linkRespSrc[3] = {
        RecordingMasterPort{"src0"}, RecordingMasterPort{"src1"},
        RecordingMasterPort{"src2"}};
};

} // namespace

TEST_F(RcFixture, Vp2psRegisterWithWildcatIds)
{
    // Paper Sec. V-A: device IDs 0x9c90/0x9c92/0x9c94 on bus 0.
    for (unsigned i = 0; i < 3; ++i) {
        PciFunction *fn = host.lookup(
            Bdf{0, static_cast<std::uint8_t>(i), 0});
        ASSERT_NE(fn, nullptr);
        EXPECT_EQ(fn->config().raw16(cfg::vendorId), 0x8086);
    }
    EXPECT_EQ(host.lookup(Bdf{0, 0, 0})->config().raw16(cfg::deviceId),
              0x9c90);
    EXPECT_EQ(host.lookup(Bdf{0, 1, 0})->config().raw16(cfg::deviceId),
              0x9c92);
    EXPECT_EQ(host.lookup(Bdf{0, 2, 0})->config().raw16(cfg::deviceId),
              0x9c94);
}

TEST_F(RcFixture, Vp2pExposesRootPortPcieCapability)
{
    ConfigSpace &cs = rc->vp2p(0).config();
    EXPECT_EQ(cs.raw8(cfg::capPtr), Vp2p::pcieCapOffset);
    std::uint16_t cap =
        cs.raw16(Vp2p::pcieCapOffset + cfg::pcieCapReg);
    EXPECT_EQ((cap >> 4) & 0xf,
              static_cast<unsigned>(cfg::PciePortType::RootPort));
}

TEST_F(RcFixture, RoutesRequestsByVp2pWindow)
{
    programVp2p(0, 0x40000000, 0x401fffff, 1, 1);
    programVp2p(1, 0x40200000, 0x403fffff, 2, 2);
    programVp2p(2, 0x40400000, 0x405fffff, 3, 3);
    sim.initialize();

    membus.sendTimingReq(
        Packet::makeRequest(MemCmd::ReadReq, 0x40250000, 4));
    membus.sendTimingReq(
        Packet::makeRequest(MemCmd::ReadReq, 0x40000000, 4));
    membus.sendTimingReq(
        Packet::makeRequest(MemCmd::ReadReq, 0x40500000, 4));
    sim.run();

    EXPECT_EQ(linkReqSink[0].requests.size(), 1u);
    EXPECT_EQ(linkReqSink[1].requests.size(), 1u);
    EXPECT_EQ(linkReqSink[2].requests.size(), 1u);
    EXPECT_EQ(linkReqSink[1].requests[0]->addr(), 0x40250000u);
    // The RC latency applies.
    EXPECT_GE(sim.curTick(), 150_ns);
}

TEST_F(RcFixture, UpstreamSlaveStampsBusZero)
{
    programVp2p(0, 0x40000000, 0x401fffff, 1, 1);
    sim.initialize();
    PacketPtr pkt = Packet::makeRequest(MemCmd::ReadReq,
                                        0x40000000, 4);
    EXPECT_EQ(pkt->pciBusNumber(), -1);
    membus.sendTimingReq(pkt);
    sim.run();
    EXPECT_EQ(pkt->pciBusNumber(), 0);
}

TEST_F(RcFixture, DmaStampedWithSecondaryBusAndForwardedToIOCache)
{
    programVp2p(1, 0x40200000, 0x403fffff, 2, 4);
    sim.initialize();

    PacketPtr pkt = Packet::makeRequest(MemCmd::WriteReq,
                                        0x80001000, 64);
    EXPECT_TRUE(linkRespSrc[1].sendTimingReq(pkt));
    sim.run();
    ASSERT_EQ(iocache.requests.size(), 1u);
    // Stamped with the ingress VP2P's secondary bus number.
    EXPECT_EQ(pkt->pciBusNumber(), 2);
}

TEST_F(RcFixture, DmaResponseRoutedByBusNumber)
{
    programVp2p(0, 0x40000000, 0x401fffff, 1, 1);
    programVp2p(1, 0x40200000, 0x403fffff, 2, 4);
    sim.initialize();

    // DMA up from port 1, response must come back to port 1.
    iocache.autoRespond = true;
    PacketPtr pkt = Packet::makeRequest(MemCmd::WriteReq,
                                        0x80001000, 64);
    linkRespSrc[1].sendTimingReq(pkt);
    sim.run();
    ASSERT_EQ(linkRespSrc[1].responses.size(), 1u);
    EXPECT_TRUE(linkRespSrc[0].responses.empty());
}

TEST_F(RcFixture, PioResponseWithBusZeroGoesUpstream)
{
    programVp2p(0, 0x40000000, 0x401fffff, 1, 1);
    sim.initialize();

    // A PIO request goes down port 0...
    PacketPtr pkt = Packet::makeRequest(MemCmd::ReadReq,
                                        0x40000010, 4);
    membus.sendTimingReq(pkt);
    sim.run();
    ASSERT_EQ(linkReqSink[0].requests.size(), 1u);

    // ... and the device's response (bus 0) exits upstream.
    pkt->makeResponse();
    EXPECT_TRUE(rc->rootPortMaster(0).recvTimingResp(pkt));
    sim.run();
    ASSERT_EQ(membus.responses.size(), 1u);
}

TEST_F(RcFixture, PeerToPeerRequestRoutedAcrossRootPorts)
{
    programVp2p(0, 0x40000000, 0x401fffff, 1, 1);
    programVp2p(1, 0x40200000, 0x403fffff, 2, 2);
    sim.initialize();

    // A device below port 0 targets MMIO of the device below
    // port 1: routed across, not to memory.
    PacketPtr pkt = Packet::makeRequest(MemCmd::WriteReq,
                                        0x40200000, 4);
    linkRespSrc[0].sendTimingReq(pkt);
    sim.run();
    ASSERT_EQ(linkReqSink[1].requests.size(), 1u);
    EXPECT_TRUE(iocache.requests.empty());
    // Stamped with port 0's secondary bus.
    EXPECT_EQ(pkt->pciBusNumber(), 1);
}

TEST_F(RcFixture, RefusesWhenPortBufferFull)
{
    programVp2p(0, 0x40000000, 0x401fffff, 1, 1);
    linkReqSink[0].refuseRequests = 1000000;
    sim.initialize();

    // Port buffer capacity is 4 in this fixture.
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(membus.sendTimingReq(Packet::makeRequest(
            MemCmd::ReadReq, 0x40000000 + 4 * i, 4)));
    }
    sim.run();
    EXPECT_FALSE(membus.sendTimingReq(Packet::makeRequest(
        MemCmd::ReadReq, 0x40000100, 4)));
    EXPECT_EQ(rc->bufferRefusals(), 1u);
}

TEST_F(RcFixture, UnclaimedAddressPanics)
{
    setLoggingThrows(true);
    sim.initialize();
    // No VP2P window programmed: nothing claims the address.
    EXPECT_THROW(membus.sendTimingReq(Packet::makeRequest(
                     MemCmd::ReadReq, 0x40000000, 4)),
                 PanicError);
    setLoggingThrows(false);
}
