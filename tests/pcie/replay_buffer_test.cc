/**
 * @file
 * Unit tests for the replay buffer.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "pcie/replay_buffer.hh"

using namespace pciesim;

namespace
{

PciePkt
tlp(SeqNum seq)
{
    return PciePkt::makeTlp(
        Packet::makeRequest(MemCmd::WriteReq, 0, 64), seq);
}

} // namespace

TEST(ReplayBufferTest, FillsToCapacity)
{
    ReplayBuffer rb(4);
    EXPECT_TRUE(rb.empty());
    for (SeqNum s = 0; s < 4; ++s) {
        EXPECT_FALSE(rb.full());
        rb.push(tlp(s));
    }
    EXPECT_TRUE(rb.full());
    EXPECT_EQ(rb.size(), 4u);
    EXPECT_EQ(rb.capacity(), 4u);
}

TEST(ReplayBufferTest, AckPurgesUpToAndIncluding)
{
    ReplayBuffer rb(8);
    for (SeqNum s = 0; s < 6; ++s)
        rb.push(tlp(s));
    EXPECT_EQ(rb.ack(2), 3u); // purge 0,1,2
    EXPECT_EQ(rb.size(), 3u);
    EXPECT_EQ(rb.entries().front().seq(), 3u);
    EXPECT_EQ(rb.ack(10), 3u); // purge the rest
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.ack(10), 0u); // idempotent
}

TEST(ReplayBufferTest, EntriesStayInSequenceOrder)
{
    ReplayBuffer rb(4);
    rb.push(tlp(5));
    rb.push(tlp(6));
    rb.push(tlp(9));
    SeqNum prev = 0;
    for (const auto &e : rb.entries()) {
        EXPECT_GT(e.seq(), prev);
        prev = e.seq();
    }
}

TEST(ReplayBufferTest, ViolationsPanic)
{
    setLoggingThrows(true);
    ReplayBuffer rb(2);
    rb.push(tlp(3));
    EXPECT_THROW(rb.push(tlp(2)), PanicError); // non-increasing
    EXPECT_THROW(rb.push(PciePkt::makeDllp(DllpType::Ack, 0)),
                 PanicError); // not a TLP
    rb.push(tlp(4));
    EXPECT_THROW(rb.push(tlp(5)), PanicError); // overflow
    EXPECT_THROW(ReplayBuffer(0), PanicError); // zero capacity
    setLoggingThrows(false);
}

TEST(SeqArithmeticTest, ModularHelpers)
{
    // The DLL sequence space is 12 bits (spec: seq numbers count
    // modulo 4096); comparisons hold as long as the window stays
    // under half the modulus.
    EXPECT_EQ(seqInc(0), 1u);
    EXPECT_EQ(seqInc(4095), 0u);
    EXPECT_EQ(seqDec(0), 4095u);
    EXPECT_EQ(seqDistance(4094, 2), 4u);
    EXPECT_TRUE(seqLt(4094, 2));  // across the wrap
    EXPECT_TRUE(seqLe(2, 2));
    EXPECT_FALSE(seqLt(2, 2));
    EXPECT_FALSE(seqLt(2, 4094)); // 4094 is "behind" 2
    EXPECT_TRUE(seqLe(0, seqModulus / 2 - 1));
    EXPECT_FALSE(seqLe(0, seqModulus / 2));
    // Sequence numbers are clamped into the 12-bit space.
    EXPECT_EQ(seqClamp(4096), 0u);
    EXPECT_EQ(seqInc(8191), 0u);
}

TEST(ReplayBufferTest, SequenceWrapAround)
{
    // Fill across the 4095 -> 0 wrap; order, acking, and the seq
    // audit must all use modular comparisons.
    ReplayBuffer rb(4);
    rb.push(tlp(4094));
    rb.push(tlp(4095));
    rb.push(tlp(0));
    rb.push(tlp(1));
    EXPECT_TRUE(rb.full());

    // ACK 4095 purges the two pre-wrap entries only.
    EXPECT_EQ(rb.ack(4095), 2u);
    ASSERT_EQ(rb.size(), 2u);
    EXPECT_EQ(rb.entries().front().seq(), 0u);

    // ACK 1 (post-wrap) purges the rest.
    EXPECT_EQ(rb.ack(1), 2u);
    EXPECT_TRUE(rb.empty());

    // Refill past the wrap point and ACK across it in one step.
    rb.push(tlp(4095));
    rb.push(tlp(0));
    EXPECT_EQ(rb.ack(0), 2u);
    EXPECT_TRUE(rb.empty());
}

TEST(ReplayBufferTest, WrapViolationsStillPanic)
{
    // Modular order must still reject pushes that go backwards,
    // including "backwards across the wrap".
    setLoggingThrows(true);
    ReplayBuffer rb(4);
    rb.push(tlp(0));
    EXPECT_THROW(rb.push(tlp(4095)), PanicError);
    rb.push(tlp(1));
    EXPECT_THROW(rb.push(tlp(1)), PanicError); // duplicate
    setLoggingThrows(false);
}
