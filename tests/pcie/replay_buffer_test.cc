/**
 * @file
 * Unit tests for the replay buffer.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "pcie/replay_buffer.hh"

using namespace pciesim;

namespace
{

PciePkt
tlp(SeqNum seq)
{
    return PciePkt::makeTlp(
        Packet::makeRequest(MemCmd::WriteReq, 0, 64), seq);
}

} // namespace

TEST(ReplayBufferTest, FillsToCapacity)
{
    ReplayBuffer rb(4);
    EXPECT_TRUE(rb.empty());
    for (SeqNum s = 0; s < 4; ++s) {
        EXPECT_FALSE(rb.full());
        rb.push(tlp(s));
    }
    EXPECT_TRUE(rb.full());
    EXPECT_EQ(rb.size(), 4u);
    EXPECT_EQ(rb.capacity(), 4u);
}

TEST(ReplayBufferTest, AckPurgesUpToAndIncluding)
{
    ReplayBuffer rb(8);
    for (SeqNum s = 0; s < 6; ++s)
        rb.push(tlp(s));
    EXPECT_EQ(rb.ack(2), 3u); // purge 0,1,2
    EXPECT_EQ(rb.size(), 3u);
    EXPECT_EQ(rb.entries().front().seq(), 3u);
    EXPECT_EQ(rb.ack(10), 3u); // purge the rest
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.ack(10), 0u); // idempotent
}

TEST(ReplayBufferTest, EntriesStayInSequenceOrder)
{
    ReplayBuffer rb(4);
    rb.push(tlp(5));
    rb.push(tlp(6));
    rb.push(tlp(9));
    SeqNum prev = 0;
    for (const auto &e : rb.entries()) {
        EXPECT_GT(e.seq(), prev);
        prev = e.seq();
    }
}

TEST(ReplayBufferTest, ViolationsPanic)
{
    setLoggingThrows(true);
    ReplayBuffer rb(2);
    rb.push(tlp(3));
    EXPECT_THROW(rb.push(tlp(2)), PanicError); // non-increasing
    EXPECT_THROW(rb.push(PciePkt::makeDllp(DllpType::Ack, 0)),
                 PanicError); // not a TLP
    rb.push(tlp(4));
    EXPECT_THROW(rb.push(tlp(5)), PanicError); // overflow
    EXPECT_THROW(ReplayBuffer(0), PanicError); // zero capacity
    setLoggingThrows(false);
}
