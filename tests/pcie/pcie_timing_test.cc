/**
 * @file
 * Unit tests for PCI-Express timing: generation parameters, Table I
 * overheads, serialization times, and the replay-timeout formula.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pcie/pcie_pkt.hh"
#include "pcie/pcie_timing.hh"

using namespace pciesim;
using namespace pciesim::literals;

TEST(PcieTimingTest, SymbolTimesPerGeneration)
{
    // Gen1: 10 bits at 2.5 Gbps = 4 ns; Gen2: 2 ns;
    // Gen3: 8 * 130/128 bits at 8 Gbps ~ 1.0156 ns.
    EXPECT_EQ(symbolTime(PcieGen::Gen1), 4000u);
    EXPECT_EQ(symbolTime(PcieGen::Gen2), 2000u);
    EXPECT_EQ(symbolTime(PcieGen::Gen3), 1015u);
}

TEST(PcieTimingTest, TableIOverheads)
{
    EXPECT_EQ(overhead::tlpHeader, 12u);
    EXPECT_EQ(overhead::tlpSeqNum, 2u);
    EXPECT_EQ(overhead::tlpLcrc, 4u);
    EXPECT_EQ(overhead::framing, 2u);
    EXPECT_EQ(overhead::tlpTotal, 20u);
    EXPECT_EQ(overhead::dllpTotal, 8u);
}

TEST(PcieTimingTest, CacheLineTlpOnGen2X1Takes168ns)
{
    // The paper's device-level number: a 64 B payload TLP occupies
    // 84 symbols; at 2 ns each that is 168 ns, i.e. 3.05 Gbps -
    // the "3.072 Gbps" of Sec. VI-B.
    PacketPtr pkt = Packet::makeRequest(MemCmd::WriteReq, 0, 64);
    PciePkt tlp = PciePkt::makeTlp(pkt, 0);
    EXPECT_EQ(tlp.wireSymbols(), 84u);
    EXPECT_EQ(tlp.wireTime(PcieGen::Gen2, 1), 168_ns);
}

struct SerializationCase
{
    PcieGen gen;
    unsigned width;
    unsigned symbols;
    Tick expect;
};

class SerializationTime
    : public ::testing::TestWithParam<SerializationCase>
{};

TEST_P(SerializationTime, MatchesHandComputation)
{
    const auto &c = GetParam();
    EXPECT_EQ(serializationTime(c.gen, c.width, c.symbols), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SerializationTime,
    ::testing::Values(
        // 84 symbols striped across lanes, per-lane count rounded up
        SerializationCase{PcieGen::Gen2, 1, 84, 168_ns},
        SerializationCase{PcieGen::Gen2, 2, 84, 84_ns},
        SerializationCase{PcieGen::Gen2, 4, 84, 42_ns},
        SerializationCase{PcieGen::Gen2, 8, 84, 22_ns}, // ceil(84/8)=11
        SerializationCase{PcieGen::Gen1, 1, 84, 336_ns},
        SerializationCase{PcieGen::Gen3, 1, 84,
                          Tick{84} * 1015},
        // a DLLP (8 symbols)
        SerializationCase{PcieGen::Gen2, 1, 8, 16_ns},
        SerializationCase{PcieGen::Gen2, 8, 8, 2_ns},
        SerializationCase{PcieGen::Gen2, 32, 8, 2_ns}));

TEST(PcieTimingTest, AckFactorTable)
{
    // Small payloads: 1.4 up to x4, 2.5 at x8, 3.0 beyond.
    EXPECT_DOUBLE_EQ(ackFactor(64, 1), 1.4);
    EXPECT_DOUBLE_EQ(ackFactor(64, 2), 1.4);
    EXPECT_DOUBLE_EQ(ackFactor(64, 4), 1.4);
    EXPECT_DOUBLE_EQ(ackFactor(64, 8), 2.5);
    EXPECT_DOUBLE_EQ(ackFactor(64, 16), 3.0);
    EXPECT_DOUBLE_EQ(ackFactor(64, 32), 3.0);
}

TEST(PcieTimingTest, ReplayTimeoutFormula)
{
    // ((MaxPayload + 28) / Width * AckFactor + 0) * 3 symbol times.
    // Gen2 x1, 64 B: (92 / 1 * 1.4) * 3 = 386.4 symbols * 2 ns.
    Tick t = replayTimeout(PcieGen::Gen2, 1, 64);
    EXPECT_EQ(t, static_cast<Tick>(
                     std::ceil(92.0 * 1.4 * 3.0 * 2000.0 / 1.0)));
    // Gen2 x8: (92 / 8 * 2.5) * 3 = 86.25 symbols * 2 ns = 172.5 ns.
    Tick t8 = replayTimeout(PcieGen::Gen2, 8, 64);
    EXPECT_EQ(t8, 172500u);
}

TEST(PcieTimingTest, AckTimerIsAThirdOfReplayTimeout)
{
    for (unsigned w : {1u, 2u, 4u, 8u, 16u}) {
        EXPECT_EQ(ackTimerPeriod(PcieGen::Gen2, w, 64),
                  replayTimeout(PcieGen::Gen2, w, 64) / 3);
    }
}

class TimeoutMonotonicity
    : public ::testing::TestWithParam<PcieGen>
{};

TEST_P(TimeoutMonotonicity, WiderLinksTimeOutFasterWithinAckClass)
{
    // Within a constant AckFactor class the per-lane symbol count
    // shrinks with width, so the timeout shrinks too.
    PcieGen gen = GetParam();
    EXPECT_GT(replayTimeout(gen, 1, 64), replayTimeout(gen, 2, 64));
    EXPECT_GT(replayTimeout(gen, 2, 64), replayTimeout(gen, 4, 64));
    // Larger payloads mean longer timeouts at fixed width.
    EXPECT_GT(replayTimeout(gen, 4, 256), replayTimeout(gen, 4, 64));
}

INSTANTIATE_TEST_SUITE_P(Gens, TimeoutMonotonicity,
                         ::testing::Values(PcieGen::Gen1,
                                           PcieGen::Gen2,
                                           PcieGen::Gen3));

TEST(PciePktTest, DllpWireSize)
{
    PciePkt ack = PciePkt::makeDllp(DllpType::Ack, 7);
    EXPECT_TRUE(ack.isDllp());
    EXPECT_EQ(ack.seq(), 7u);
    EXPECT_EQ(ack.wireSymbols(), 8u);
}

TEST(PciePktTest, WireSizeSnapshotSurvivesResponseConversion)
{
    // The completer flips the packet to a response in place while a
    // copy sits in the replay buffer; the wrapper's recorded size
    // must not change (it represents what went on the wire).
    PacketPtr pkt = Packet::makeRequest(MemCmd::WriteReq, 0, 64);
    PciePkt tlp = PciePkt::makeTlp(pkt, 1);
    EXPECT_EQ(tlp.wireSymbols(), 84u);
    pkt->makeResponse(); // write response: payload would now be 0
    EXPECT_EQ(tlp.wireSymbols(), 84u);
}

TEST(PciePktTest, ReadRequestCarriesNoPayload)
{
    PacketPtr pkt = Packet::makeRequest(MemCmd::ReadReq, 0, 64);
    PciePkt tlp = PciePkt::makeTlp(pkt, 0);
    EXPECT_EQ(tlp.wireSymbols(), 20u); // header-only TLP
}
