/**
 * @file
 * Property tests of the PCI-Express link's data link layer: under
 * randomized delivery refusals, burst timings, and every
 * generation/width combination, the link must deliver every TLP
 * exactly once and in order - the invariant the ACK/NAK protocol
 * exists to provide (paper Sec. V-C).
 */

#include <gtest/gtest.h>

#include <random>

#include "../common/test_ports.hh"
#include "pcie/pcie_link.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

namespace
{

/** A slave port that refuses deliveries pseudo-randomly. */
class FlakySlavePort : public SlavePort
{
  public:
    FlakySlavePort(const std::string &name, std::uint32_t seed,
                   double refuse_prob)
        : SlavePort(name), rng_(seed), refuseProb_(refuse_prob)
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        if (dist_(rng_) < refuseProb_) {
            ++refused;
            return false;
        }
        delivered.push_back(pkt->addr());
        if (pkt->needsResponse()) {
            pkt->makeResponse();
            if (!sendTimingResp(pkt))
                pending.push_back(pkt);
        }
        return true;
    }

    void
    recvRespRetry() override
    {
        while (!pending.empty()) {
            if (!sendTimingResp(pending.front()))
                return;
            pending.pop_front();
        }
    }

    AddrRangeList
    getAddrRanges() const override
    {
        return {AddrRange{0, 1ULL << 40}};
    }

    std::vector<Addr> delivered;
    std::deque<PacketPtr> pending;
    unsigned refused = 0;

  private:
    std::mt19937 rng_;
    std::uniform_real_distribution<double> dist_{0.0, 1.0};
    double refuseProb_;
};

/** A master port that retries refused sends on the retry signal. */
class PatientMasterPort : public MasterPort
{
  public:
    using MasterPort::MasterPort;

    bool
    recvTimingResp(PacketPtr pkt) override
    {
        responses.push_back(pkt->addr());
        return true;
    }

    void
    recvReqRetry() override
    {
        retryReady = true;
    }

    std::vector<Addr> responses;
    bool retryReady = false;
};

struct FuzzCase
{
    PcieGen gen;
    unsigned width;
    std::size_t replayBuf;
    double refuseProb;
    bool ackImmediate;
    std::uint32_t seed;
};

class LinkFuzz : public ::testing::TestWithParam<FuzzCase>
{};

} // namespace

TEST_P(LinkFuzz, ExactlyOnceInOrderDelivery)
{
    const FuzzCase &c = GetParam();
    Simulation sim;
    PcieLinkParams params;
    params.gen = c.gen;
    params.width = c.width;
    params.replayBufferSize = c.replayBuf;
    params.ackImmediate = c.ackImmediate;
    PcieLink link(sim, "link", params);

    PatientMasterPort src("src");
    FlakySlavePort dst("dst", c.seed, c.refuseProb);
    RecordingSlavePort up_sink("upSink", {AddrRange{0, 1ULL << 40}});
    RecordingMasterPort up_src("upSrc");
    src.bind(link.upSlave());
    link.upMaster().bind(up_sink);
    link.downMaster().bind(dst);
    up_src.bind(link.downSlave());
    sim.initialize();

    const unsigned total = 200;
    std::mt19937 rng(c.seed ^ 0x5eed);
    std::uniform_int_distribution<int> gap(0, 3);

    unsigned sent = 0;
    std::uint64_t guard = 0;
    while ((dst.delivered.size() < total ||
            src.responses.size() < total) &&
           guard++ < 5000000) {
        if (sent < total) {
            PacketPtr pkt = Packet::makeRequest(
                MemCmd::WriteReq, static_cast<Addr>(sent) * 64, 64);
            if (src.sendTimingReq(pkt))
                ++sent;
        }
        // Random pacing: advance a few events between attempts.
        int steps = gap(rng);
        for (int s = 0; s <= steps; ++s) {
            if (!sim.eventq().step())
                break;
        }
    }
    sim.run();

    // Exactly once, in order, every response returned.
    ASSERT_EQ(dst.delivered.size(), total)
        << "refused " << dst.refused << " times";
    for (unsigned i = 0; i < total; ++i)
        EXPECT_EQ(dst.delivered[i], static_cast<Addr>(i) * 64);
    ASSERT_EQ(src.responses.size(), total);
    EXPECT_EQ(Packet::liveCount(), 0u) << "packet leak";
}

INSTANTIATE_TEST_SUITE_P(
    GenWidthSweep, LinkFuzz,
    ::testing::Values(
        FuzzCase{PcieGen::Gen1, 1, 4, 0.0, false, 1},
        FuzzCase{PcieGen::Gen2, 1, 4, 0.1, false, 2},
        FuzzCase{PcieGen::Gen2, 2, 4, 0.3, false, 3},
        FuzzCase{PcieGen::Gen2, 4, 2, 0.3, false, 4},
        FuzzCase{PcieGen::Gen2, 8, 4, 0.5, false, 5},
        FuzzCase{PcieGen::Gen2, 8, 1, 0.5, false, 6},
        FuzzCase{PcieGen::Gen3, 4, 4, 0.3, false, 7},
        FuzzCase{PcieGen::Gen3, 16, 8, 0.3, false, 8},
        FuzzCase{PcieGen::Gen2, 1, 4, 0.3, true, 9},
        FuzzCase{PcieGen::Gen2, 8, 4, 0.5, true, 10},
        FuzzCase{PcieGen::Gen1, 32, 16, 0.2, false, 11},
        FuzzCase{PcieGen::Gen2, 4, 4, 0.7, false, 12}));

TEST(LinkFuzzBidirectional, SimultaneousTrafficBothDirections)
{
    Simulation sim;
    PcieLinkParams params;
    params.width = 2;
    PcieLink link(sim, "link", params);

    PatientMasterPort down_src("downSrc"); // CPU side
    FlakySlavePort down_dst("downDst", 77, 0.2);
    PatientMasterPort up_src("upSrc");     // device DMA side
    FlakySlavePort up_dst("upDst", 78, 0.2);

    down_src.bind(link.upSlave());
    link.upMaster().bind(up_dst);
    link.downMaster().bind(down_dst);
    up_src.bind(link.downSlave());
    sim.initialize();

    const unsigned total = 100;
    unsigned sent_down = 0, sent_up = 0;
    std::uint64_t guard = 0;
    while ((down_dst.delivered.size() < total ||
            up_dst.delivered.size() < total) &&
           guard++ < 5000000) {
        if (sent_down < total &&
            down_src.sendTimingReq(Packet::makeRequest(
                MemCmd::WriteReq,
                static_cast<Addr>(sent_down) * 64, 64))) {
            ++sent_down;
        }
        if (sent_up < total &&
            up_src.sendTimingReq(Packet::makeRequest(
                MemCmd::WriteReq,
                0x1000000 + static_cast<Addr>(sent_up) * 64, 64))) {
            ++sent_up;
        }
        sim.eventq().step();
    }
    sim.run();

    ASSERT_EQ(down_dst.delivered.size(), total);
    ASSERT_EQ(up_dst.delivered.size(), total);
    for (unsigned i = 0; i < total; ++i) {
        EXPECT_EQ(down_dst.delivered[i], static_cast<Addr>(i) * 64);
        EXPECT_EQ(up_dst.delivered[i],
                  0x1000000 + static_cast<Addr>(i) * 64);
    }
    EXPECT_EQ(Packet::liveCount(), 0u);
}
