/**
 * @file
 * Unit tests for the virtual PCI-to-PCI bridge function
 * (paper Sec. V-A).
 */

#include <gtest/gtest.h>

#include "pci/bridge_header.hh"
#include "pci/config_regs.hh"
#include "pcie/vp2p.hh"

using namespace pciesim;

TEST(Vp2pTest, PowerOnStateForwardsNothing)
{
    Vp2p vp("vp", Vp2pParams{});
    EXPECT_FALSE(vp.forwardingEnabled());
    EXPECT_FALSE(vp.busMasterEnabled());
    EXPECT_FALSE(vp.claims(0x40000000));
    EXPECT_TRUE(vp.memWindow().empty());
    EXPECT_TRUE(vp.ioWindow().empty());
    // Bus 0 must never match an unconfigured bridge (responses with
    // bus number 0 belong upstream).
    EXPECT_FALSE(vp.busInRange(0));
}

TEST(Vp2pTest, CapabilityPointerIsD8)
{
    // Paper Sec. V-A: "Capability Pointer. Set to 0xD8".
    Vp2p vp("vp", Vp2pParams{});
    EXPECT_EQ(vp.config().raw8(cfg::capPtr), 0xd8);
    EXPECT_EQ(vp.config().raw8(0xd8), cfg::capIdPcie);
    // Status bit 4 set: capability list implemented (the paper's
    // Status Register description).
    EXPECT_NE(vp.config().raw16(cfg::status) & cfg::statusCapList,
              0);
}

TEST(Vp2pTest, ClaimsRequireCommandEnableAndWindow)
{
    Vp2p vp("vp", Vp2pParams{});
    BridgeHeader::programMemWindow(vp.config(), 0x40000000,
                                   0x401fffff);
    // Window programmed but forwarding not enabled yet.
    EXPECT_FALSE(vp.claims(0x40100000));

    vp.config().write(cfg::command, 2,
                      cfg::cmdMemEnable | cfg::cmdBusMaster);
    EXPECT_TRUE(vp.claims(0x40100000));
    EXPECT_FALSE(vp.claims(0x40200000));
    EXPECT_TRUE(vp.busMasterEnabled());
}

TEST(Vp2pTest, IoWindowClaims)
{
    Vp2p vp("vp", Vp2pParams{});
    BridgeHeader::programIoWindow(vp.config(), 0x2f000000,
                                  0x2f000fff);
    vp.config().write(cfg::command, 2, cfg::cmdIoEnable);
    EXPECT_TRUE(vp.claims(0x2f000800));
    EXPECT_FALSE(vp.claims(0x2f001000));
}

struct PortTypeCase
{
    cfg::PciePortType type;
    std::uint16_t deviceId;
};

class Vp2pPortType : public ::testing::TestWithParam<PortTypeCase>
{};

TEST_P(Vp2pPortType, EncodedInPcieCapability)
{
    const auto &c = GetParam();
    Vp2pParams params;
    params.portType = c.type;
    params.deviceId = c.deviceId;
    Vp2p vp("vp", params);
    EXPECT_EQ(vp.config().raw16(cfg::deviceId), c.deviceId);
    std::uint16_t cap =
        vp.config().raw16(Vp2p::pcieCapOffset + cfg::pcieCapReg);
    EXPECT_EQ((cap >> 4) & 0xf, static_cast<unsigned>(c.type));
}

INSTANTIATE_TEST_SUITE_P(
    Types, Vp2pPortType,
    ::testing::Values(
        PortTypeCase{cfg::PciePortType::RootPort, 0x9c90},
        PortTypeCase{cfg::PciePortType::SwitchUpstream, 0x8796},
        PortTypeCase{cfg::PciePortType::SwitchDownstream, 0x8796}));

TEST(Vp2pTest, SoftwareProgrammedBusRangeMatches)
{
    Vp2p vp("vp", Vp2pParams{});
    BridgeHeader::programBusNumbers(vp.config(), 0, 2, 6);
    EXPECT_EQ(vp.primaryBus(), 0u);
    EXPECT_EQ(vp.secondaryBus(), 2u);
    EXPECT_EQ(vp.subordinateBus(), 6u);
    EXPECT_TRUE(vp.busInRange(2));
    EXPECT_TRUE(vp.busInRange(6));
    EXPECT_FALSE(vp.busInRange(1));
    EXPECT_FALSE(vp.busInRange(7));
}
