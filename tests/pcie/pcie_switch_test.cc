/**
 * @file
 * Unit tests for the PCI-Express switch (paper Sec. V-B).
 */

#include <gtest/gtest.h>

#include "../common/test_ports.hh"
#include "pci/bridge_header.hh"
#include "pci/config_regs.hh"
#include "pcie/pcie_switch.hh"

using namespace pciesim;
using namespace pciesim::test;
using namespace pciesim::literals;

namespace
{

struct SwitchFixture : ::testing::Test
{
    SwitchFixture()
    {
        PcieSwitchParams params;
        params.numDownstreamPorts = 2;
        params.latency = 150_ns;
        params.portBufferSize = 4;
        sw = std::make_unique<PcieSwitch>(sim, "sw", params);

        upSrc.bind(sw->upstreamSlavePort());
        sw->upstreamMasterPort().bind(upSink);
        for (unsigned i = 0; i < 2; ++i) {
            sw->downstreamMaster(i).bind(downSink[i]);
            downSrc[i].bind(sw->downstreamSlave(i));
        }
    }

    void
    programVp2p(Vp2p &vp, Addr base, Addr limit, unsigned pri,
                unsigned sec, unsigned sub)
    {
        ConfigSpace &cs = vp.config();
        BridgeHeader::programBusNumbers(cs, pri, sec, sub);
        BridgeHeader::programMemWindow(cs, base, limit);
        cs.write(cfg::command, 2,
                 cfg::cmdMemEnable | cfg::cmdIoEnable |
                 cfg::cmdBusMaster);
    }

    /** Program the standard test hierarchy: upstream VP2P covers
     *  both downstream windows; internal bus 2; children 3 and 4. */
    void
    programAll()
    {
        programVp2p(sw->upstreamVp2p(), 0x40000000, 0x403fffff, 1, 2,
                    4);
        programVp2p(sw->downstreamVp2p(0), 0x40000000, 0x401fffff, 2,
                    3, 3);
        programVp2p(sw->downstreamVp2p(1), 0x40200000, 0x403fffff, 2,
                    4, 4);
    }

    Simulation sim;
    std::unique_ptr<PcieSwitch> sw;
    RecordingMasterPort upSrc{"upSrc"};
    RecordingSlavePort upSink{"upSink",
                              {AddrRange{0x80000000, 0x90000000}}};
    RecordingSlavePort downSink[2] = {
        RecordingSlavePort{"down0", {}},
        RecordingSlavePort{"down1", {}}};
    RecordingMasterPort downSrc[2] = {RecordingMasterPort{"src0"},
                                      RecordingMasterPort{"src1"}};
};

} // namespace

TEST_F(SwitchFixture, PortTypesInPcieCapability)
{
    auto port_type = [](Vp2p &vp) {
        return (vp.config().raw16(Vp2p::pcieCapOffset +
                                  cfg::pcieCapReg) >> 4) & 0xf;
    };
    EXPECT_EQ(port_type(sw->upstreamVp2p()),
              static_cast<unsigned>(
                  cfg::PciePortType::SwitchUpstream));
    EXPECT_EQ(port_type(sw->downstreamVp2p(0)),
              static_cast<unsigned>(
                  cfg::PciePortType::SwitchDownstream));
}

TEST_F(SwitchFixture, DownwardRequestsRouteByDownstreamWindows)
{
    programAll();
    sim.initialize();

    upSrc.sendTimingReq(Packet::makeRequest(MemCmd::ReadReq,
                                            0x40100000, 4));
    upSrc.sendTimingReq(Packet::makeRequest(MemCmd::ReadReq,
                                            0x40300000, 4));
    sim.run();
    EXPECT_EQ(downSink[0].requests.size(), 1u);
    EXPECT_EQ(downSink[1].requests.size(), 1u);
    // Store-and-forward latency applies.
    EXPECT_GE(sim.curTick(), 150_ns);
}

TEST_F(SwitchFixture, UpstreamSlaveAcceptsUpstreamVp2pWindow)
{
    // Paper Sec. V-B: "the upstream slave port accepts an address
    // range based on the base and limit register values stored in
    // the upstream VP2P".
    programAll();
    AddrRangeList ranges = sw->upstreamSlavePort().getAddrRanges();
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges.front(), (AddrRange{0x40000000, 0x40400000}));
}

TEST_F(SwitchFixture, DmaFromDownstreamStampedAndForwardedUp)
{
    programAll();
    sim.initialize();

    PacketPtr pkt = Packet::makeRequest(MemCmd::WriteReq,
                                        0x80000000, 64);
    EXPECT_TRUE(downSrc[0].sendTimingReq(pkt));
    sim.run();
    ASSERT_EQ(upSink.requests.size(), 1u);
    EXPECT_EQ(pkt->pciBusNumber(), 3); // port 0's secondary bus
}

TEST_F(SwitchFixture, DownwardResponseRoutedByBusNumber)
{
    programAll();
    sim.initialize();

    PacketPtr pkt = Packet::makeRequest(MemCmd::WriteReq,
                                        0x80000000, 64);
    downSrc[1].sendTimingReq(pkt); // stamps bus 4
    sim.run();
    ASSERT_EQ(upSink.requests.size(), 1u);

    pkt->makeResponse();
    EXPECT_TRUE(sw->upstreamMasterPort().recvTimingResp(pkt));
    sim.run();
    ASSERT_EQ(downSrc[1].responses.size(), 1u);
    EXPECT_TRUE(downSrc[0].responses.empty());
}

TEST_F(SwitchFixture, UpwardResponseWithForeignBusGoesUpstream)
{
    programAll();
    sim.initialize();

    // A CPU request went down to port 0; its response carries bus 0
    // and must exit the upstream slave port.
    PacketPtr pkt = Packet::makeRequest(MemCmd::ReadReq,
                                        0x40100000, 4);
    pkt->setPciBusNumber(0);
    upSrc.sendTimingReq(pkt);
    sim.run();
    ASSERT_EQ(downSink[0].requests.size(), 1u);

    pkt->makeResponse();
    EXPECT_TRUE(sw->downstreamMaster(0).recvTimingResp(pkt));
    sim.run();
    ASSERT_EQ(upSrc.responses.size(), 1u);
}

TEST_F(SwitchFixture, PeerToPeerAcrossDownstreamPorts)
{
    programAll();
    sim.initialize();

    PacketPtr pkt = Packet::makeRequest(MemCmd::WriteReq,
                                        0x40200000, 4);
    downSrc[0].sendTimingReq(pkt);
    sim.run();
    ASSERT_EQ(downSink[1].requests.size(), 1u);
    EXPECT_TRUE(upSink.requests.empty());
}

TEST_F(SwitchFixture, RefusesWhenPortBufferFull)
{
    programAll();
    downSink[0].refuseRequests = 1000000;
    sim.initialize();

    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(upSrc.sendTimingReq(Packet::makeRequest(
            MemCmd::ReadReq, 0x40000000 + 4 * i, 4)));
    }
    sim.run();
    EXPECT_FALSE(upSrc.sendTimingReq(Packet::makeRequest(
        MemCmd::ReadReq, 0x40001000, 4)));
    EXPECT_EQ(sw->bufferRefusals(), 1u);
}

TEST_F(SwitchFixture, SwitchLatencySweepShiftsDelivery)
{
    // The Fig. 9(a) knob: lower switch latency delivers earlier.
    for (Tick latency : {50_ns, 100_ns, 150_ns}) {
        Simulation s;
        PcieSwitchParams params;
        params.latency = latency;
        PcieSwitch sw2(s, "sw2", params);
        RecordingMasterPort src("src");
        RecordingSlavePort sink("sink", {});
        RecordingMasterPort d0src("d0src");
        RecordingSlavePort d0sink("d0sink", {});
        RecordingMasterPort d1src("d1src");
        RecordingSlavePort d1sink("d1sink", {});
        src.bind(sw2.upstreamSlavePort());
        sw2.upstreamMasterPort().bind(sink);
        sw2.downstreamMaster(0).bind(d0sink);
        d0src.bind(sw2.downstreamSlave(0));
        sw2.downstreamMaster(1).bind(d1sink);
        d1src.bind(sw2.downstreamSlave(1));

        ConfigSpace &cs = sw2.downstreamVp2p(0).config();
        BridgeHeader::programMemWindow(cs, 0x40000000, 0x401fffff);
        cs.write(cfg::command, 2, cfg::cmdMemEnable);
        s.initialize();

        src.sendTimingReq(Packet::makeRequest(MemCmd::ReadReq,
                                              0x40000000, 4));
        s.run();
        ASSERT_EQ(d0sink.requests.size(), 1u);
        EXPECT_EQ(s.curTick(), latency);
    }
}

TEST(SwitchContainment, ContainedPortCompletesReadsWithAllOnes)
{
    // DESIGN.md §12: after a FATAL error the downstream port is
    // contained - non-posted requests get an immediate UR/all-ones
    // completion instead of vanishing into the dead subtree.
    Simulation sim;
    PcieSwitchParams params;
    params.numDownstreamPorts = 2;
    params.latency = 150_ns;
    params.portBufferSize = 4;
    params.enableContainment = true;
    auto swp = std::make_unique<PcieSwitch>(sim, "swc", params);
    PcieSwitch *sw = swp.get();
    RecordingMasterPort upSrc{"upSrc"};
    RecordingSlavePort upSink{"upSink",
                              {AddrRange{0x80000000, 0x90000000}}};
    RecordingSlavePort downSink[2] = {
        RecordingSlavePort{"down0", {}},
        RecordingSlavePort{"down1", {}}};
    RecordingMasterPort downSrc[2] = {RecordingMasterPort{"src0"},
                                      RecordingMasterPort{"src1"}};
    upSrc.bind(sw->upstreamSlavePort());
    sw->upstreamMasterPort().bind(upSink);
    for (unsigned i = 0; i < 2; ++i) {
        sw->downstreamMaster(i).bind(downSink[i]);
        downSrc[i].bind(sw->downstreamSlave(i));
    }
    auto programVp2p = [](Vp2p &vp, Addr base, Addr limit,
                          unsigned pri, unsigned sec, unsigned sub) {
        ConfigSpace &cs = vp.config();
        BridgeHeader::programBusNumbers(cs, pri, sec, sub);
        BridgeHeader::programMemWindow(cs, base, limit);
        cs.write(cfg::command, 2,
                 cfg::cmdMemEnable | cfg::cmdIoEnable |
                 cfg::cmdBusMaster);
    };
    programVp2p(sw->upstreamVp2p(), 0x40000000, 0x403fffff, 1, 2, 4);
    programVp2p(sw->downstreamVp2p(0), 0x40000000, 0x401fffff, 2, 3,
                3);
    programVp2p(sw->downstreamVp2p(1), 0x40200000, 0x403fffff, 2, 4,
                4);
    sim.initialize();

    sw->containDownstreamPort(0);
    EXPECT_TRUE(sw->portContained(0));
    EXPECT_FALSE(sw->portContained(1));

    upSrc.sendTimingReq(Packet::makeRequest(MemCmd::ReadReq,
                                            0x40100000, 4));
    sim.run();
    // Nothing reached the dead subtree; the UR completion came
    // back all-ones.
    EXPECT_EQ(downSink[0].requests.size(), 0u);
    ASSERT_EQ(upSrc.responses.size(), 1u);
    EXPECT_EQ(upSrc.responses[0]->get<std::uint32_t>(),
              0xffffffffu);
    EXPECT_EQ(sw->urCompletions(), 1u);

    // Posted writes to the contained subtree are silently dropped.
    upSrc.sendTimingReq(Packet::makeRequest(MemCmd::PostedWriteReq,
                                            0x40100000, 4));
    // Upward traffic from the contained port is dropped too.
    downSrc[0].sendTimingReq(Packet::makeRequest(MemCmd::WriteReq,
                                                 0x80000000, 64));
    sim.run();
    EXPECT_EQ(downSink[0].requests.size(), 0u);
    EXPECT_EQ(upSink.requests.size(), 0u);
    EXPECT_GE(sw->containedDrops(), 2u);

    // The neighbouring port is unaffected.
    upSrc.sendTimingReq(Packet::makeRequest(MemCmd::ReadReq,
                                            0x40300000, 4));
    sim.run();
    EXPECT_EQ(downSink[1].requests.size(), 1u);

    // Release: traffic flows to port 0 again.
    sw->releaseDownstreamPort(0);
    EXPECT_FALSE(sw->portContained(0));
    upSrc.sendTimingReq(Packet::makeRequest(MemCmd::ReadReq,
                                            0x40100000, 4));
    sim.run();
    EXPECT_EQ(downSink[0].requests.size(), 1u);
}
