/**
 * @file
 * Unit tests for the per-link fault injector: scripted ordinal and
 * window faults, the BER-to-LCRC-failure-probability conversion,
 * and determinism of the random stream.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pcie/fault_injector.hh"

using namespace pciesim;
using namespace pciesim::literals;

namespace
{

PciePkt
tlp(SeqNum seq)
{
    return PciePkt::makeTlp(
        Packet::makeRequest(MemCmd::WriteReq, 0, 64), seq);
}

PciePkt
ack(SeqNum seq)
{
    return PciePkt::makeDllp(DllpType::Ack, seq);
}

} // namespace

TEST(FaultInjectorTest, DisabledByDefault)
{
    FaultInjectorParams p;
    EXPECT_FALSE(p.enabled());
    FaultInjector fi(p, PcieGen::Gen2, 0);
    EXPECT_FALSE(fi.enabled());
    for (SeqNum s = 0; s < 100; ++s)
        EXPECT_FALSE(fi.corruptsNext(tlp(s), 0));
    EXPECT_EQ(fi.faultsInjected(), 0u);
    EXPECT_EQ(fi.tlpsSeen(), 100u);
}

TEST(FaultInjectorTest, ScriptedOrdinalsHitExactly)
{
    FaultInjectorParams p;
    p.corruptTlpNumbers = {1, 3};
    p.corruptDllpNumbers = {2};
    EXPECT_TRUE(p.enabled());
    FaultInjector fi(p, PcieGen::Gen2, 0);

    // TLP and DLLP ordinals count independently.
    EXPECT_TRUE(fi.corruptsNext(tlp(0), 0));   // TLP #1
    EXPECT_FALSE(fi.corruptsNext(ack(0), 0));  // DLLP #1
    EXPECT_FALSE(fi.corruptsNext(tlp(1), 0));  // TLP #2
    EXPECT_TRUE(fi.corruptsNext(ack(1), 0));   // DLLP #2
    EXPECT_TRUE(fi.corruptsNext(tlp(2), 0));   // TLP #3
    EXPECT_FALSE(fi.corruptsNext(tlp(3), 0));  // TLP #4
    EXPECT_EQ(fi.faultsInjected(), 3u);
}

TEST(FaultInjectorTest, WindowCorruptsEverythingInside)
{
    FaultInjectorParams p;
    p.corruptWindowBegin = 100_ns;
    p.corruptWindowEnd = 200_ns;
    EXPECT_TRUE(p.enabled());
    FaultInjector fi(p, PcieGen::Gen2, 0);

    EXPECT_FALSE(fi.corruptsNext(tlp(0), 99_ns));
    EXPECT_TRUE(fi.corruptsNext(tlp(1), 100_ns)); // begin inclusive
    EXPECT_TRUE(fi.corruptsNext(ack(0), 150_ns));
    EXPECT_FALSE(fi.corruptsNext(tlp(2), 200_ns)); // end exclusive
}

TEST(FaultInjectorTest, CorruptProbabilityMatchesClosedForm)
{
    FaultInjectorParams p;
    p.bitErrorRate = 1e-6;
    FaultInjector fi(p, PcieGen::Gen2, 0);

    // Gen 2 uses 8b/10b: 10 encoded bits per symbol.
    double expected = 1.0 - std::pow(1.0 - 1e-6, 84 * 10.0);
    EXPECT_NEAR(fi.corruptProbability(84), expected, 1e-12);
    // More symbols on the wire -> more likely to be hit.
    EXPECT_GT(fi.corruptProbability(84), fi.corruptProbability(8));

    FaultInjectorParams off;
    FaultInjector fi_off(off, PcieGen::Gen2, 0);
    EXPECT_EQ(fi_off.corruptProbability(84), 0.0);

    FaultInjectorParams sure;
    sure.bitErrorRate = 1.0;
    FaultInjector fi_sure(sure, PcieGen::Gen2, 0);
    EXPECT_EQ(fi_sure.corruptProbability(84), 1.0);
}

TEST(FaultInjectorTest, BerDecisionsAreDeterministic)
{
    FaultInjectorParams p;
    p.bitErrorRate = 1e-4;
    FaultInjector a(p, PcieGen::Gen2, 0);
    FaultInjector b(p, PcieGen::Gen2, 0);

    unsigned corrupted = 0;
    for (SeqNum s = 0; s < 2000; ++s) {
        bool ca = a.corruptsNext(tlp(s), 0);
        bool cb = b.corruptsNext(tlp(s), 0);
        EXPECT_EQ(ca, cb);
        corrupted += ca ? 1 : 0;
    }
    // p(corrupt) ~ 1 - (1-1e-4)^840 ~ 8.1%; 2000 draws stay well
    // inside [2%, 20%].
    EXPECT_GT(corrupted, 2000u * 2 / 100);
    EXPECT_LT(corrupted, 2000u * 20 / 100);
    EXPECT_EQ(a.faultsInjected(), corrupted);
}

TEST(FaultInjectorTest, DirectionSaltsDecorrelateStreams)
{
    FaultInjectorParams p;
    // ~50% per 84-symbol packet: maximizes the chance two streams
    // disagree on any given draw.
    p.bitErrorRate = 8e-4;
    FaultInjector up(p, PcieGen::Gen2, 0);
    FaultInjector down(p, PcieGen::Gen2, 1);

    unsigned differing = 0;
    for (SeqNum s = 0; s < 256; ++s) {
        if (up.corruptsNext(tlp(s), 0) !=
            down.corruptsNext(tlp(s), 0)) {
            ++differing;
        }
    }
    EXPECT_GT(differing, 0u);
}

TEST(FaultInjectorTest, ScriptedFaultsDoNotShiftBerStream)
{
    // The PRNG draws for every packet, so adding scripted faults
    // must not change which packets the BER corrupts.
    FaultInjectorParams ber_only;
    ber_only.bitErrorRate = 1e-4;
    FaultInjectorParams mixed = ber_only;
    mixed.corruptTlpNumbers = {5};

    FaultInjector a(ber_only, PcieGen::Gen2, 0);
    FaultInjector b(mixed, PcieGen::Gen2, 0);
    for (SeqNum s = 0; s < 1000; ++s) {
        bool ca = a.corruptsNext(tlp(s), 0);
        bool cb = b.corruptsNext(tlp(s), 0);
        if (s + 1 == 5)
            EXPECT_TRUE(cb);
        else
            EXPECT_EQ(ca, cb);
    }
}
