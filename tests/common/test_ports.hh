/**
 * @file
 * Mock ports and helpers shared by the unit tests.
 */

#ifndef PCIESIM_TESTS_COMMON_TEST_PORTS_HH
#define PCIESIM_TESTS_COMMON_TEST_PORTS_HH

#include <deque>
#include <functional>
#include <vector>

#include "mem/port.hh"
#include "sim/simulation.hh"

namespace pciesim::test
{

/**
 * A master port that records responses and retry callbacks, for
 * driving a slave component directly from a test.
 */
class RecordingMasterPort : public MasterPort
{
  public:
    explicit RecordingMasterPort(const std::string &name = "test.master")
        : MasterPort(name)
    {}

    bool
    recvTimingResp(PacketPtr pkt) override
    {
        if (refuseResponses > 0) {
            --refuseResponses;
            ++responsesRefused;
            return false;
        }
        responses.push_back(pkt);
        if (onResponse)
            onResponse(pkt);
        return true;
    }

    void recvReqRetry() override { ++reqRetries; }

    std::vector<PacketPtr> responses;
    std::function<void(const PacketPtr &)> onResponse;
    int refuseResponses = 0;
    unsigned responsesRefused = 0;
    unsigned reqRetries = 0;
};

/**
 * A slave port that accepts requests (optionally refusing the first
 * N), records them, and can auto-respond.
 */
class RecordingSlavePort : public SlavePort
{
  public:
    explicit RecordingSlavePort(const std::string &name = "test.slave",
                                AddrRangeList ranges = {})
        : SlavePort(name), ranges_(std::move(ranges))
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        if (refuseRequests > 0) {
            --refuseRequests;
            ++requestsRefused;
            return false;
        }
        requests.push_back(pkt);
        if (onRequest)
            onRequest(pkt);
        if (autoRespond && pkt->needsResponse()) {
            pkt->makeResponse();
            if (!sendTimingResp(pkt))
                pendingResponses.push_back(pkt);
        }
        return true;
    }

    void
    recvRespRetry() override
    {
        ++respRetries;
        while (!pendingResponses.empty()) {
            PacketPtr p = pendingResponses.front();
            if (!sendTimingResp(p))
                return;
            pendingResponses.pop_front();
        }
    }

    std::deque<PacketPtr> pendingResponses;

    AddrRangeList
    getAddrRanges() const override
    {
        return ranges_;
    }

    void setRanges(AddrRangeList ranges) { ranges_ = std::move(ranges); }

    std::vector<PacketPtr> requests;
    std::function<void(const PacketPtr &)> onRequest;
    bool autoRespond = false;
    int refuseRequests = 0;
    unsigned requestsRefused = 0;
    unsigned respRetries = 0;

  private:
    AddrRangeList ranges_;
};

/** Run @p sim until idle (no horizon). */
inline void
drain(Simulation &sim)
{
    sim.run();
}

} // namespace pciesim::test

#endif // PCIESIM_TESTS_COMMON_TEST_PORTS_HH
